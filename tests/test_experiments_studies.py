"""Light-workload runs of the §III and §VI study functions.

The full-scale versions live in benchmarks/; these verify the study
machinery end to end at the smallest meaningful workloads.
"""

import numpy as np
import pytest

from repro.experiments.empirical import (
    fig2_temporal_stability,
    fig3_uniqueness,
    fig4_resolution,
)
from repro.experiments.evaluation import (
    EvalSettings,
    fig12_vs_gps,
    run_queries,
    window_ablation,
)
from repro.experiments.timing import (
    compute_cost_sweep,
    response_time_table,
    syn_search_seconds,
)
from repro.core.engine import RupsEngine
from repro.core.config import RupsConfig
from repro.util.rng import RngFactory


class TestEmpiricalStudies:
    def test_fig2_small(self):
        result = fig2_temporal_stability(n_locations=3, pairs_per_lag=9, seed=1)
        for curve in result.curves.values():
            assert curve.shape == result.time_differences_s.shape
            assert np.all((curve >= 0) & (curve <= 1))
        assert "dt (min)" in result.render()

    def test_fig3_small(self):
        result = fig3_uniqueness(n_roads=4, seed=1)
        assert set(result.samples) == {
            "different entries, workday",
            "different entries, weekend",
            "different roads, workday",
            "different roads, weekend",
        }
        assert result.separation_gap() > 0

    def test_fig4_small(self):
        result = fig4_resolution(n_vectors=24, max_distance_m=30.0, seed=1)
        assert result.distances_m.size == 30
        assert np.all(result.mean_relative_change > 0)

    def test_fig4_scatter_consistent(self):
        result = fig4_resolution(n_vectors=24, max_distance_m=30.0, seed=2)
        assert result.scatter_distances_m.size == result.scatter_values.size


class TestEvaluationStudies:
    def test_run_queries_counts(self, shared_pair, shared_engine):
        rng = RngFactory(0).generator("q")
        batch = run_queries(shared_pair, 5, shared_engine, rng)
        assert batch.n_queries == 5
        assert batch.n_resolved >= 4

    def test_run_queries_window_too_short(self, small_plan):
        # A context longer than the whole drive leaves no valid query
        # window and must fail loudly, not return garbage.
        from repro.experiments.traces import drive_pair

        short_pair = drive_pair(duration_s=90.0, plan=small_plan, seed=17)
        engine = RupsEngine(RupsConfig(context_length_m=1000.0))
        rng = RngFactory(0).generator("q")
        with pytest.raises(ValueError, match="window|short"):
            run_queries(short_pair, 2, engine, rng)

    def test_fig12_tiny(self, small_plan):
        settings = EvalSettings(
            n_drives=1, queries_per_drive=4, duration_s=300.0, plan=small_plan, seed=3
        )
        result = fig12_vs_gps(settings)
        assert set(result.rups) == set(result.gps)
        assert result.mean_improvement_factor() > 0
        assert "GPS" in result.render()

    def test_window_ablation_tiny(self):
        result = window_ablation(
            window_lengths_m=(20.0, 85.0),
            n_trials=6,
            seed=1,
            settings=EvalSettings(n_drives=1, queries_per_drive=6, seed=1),
        )
        assert result.window_lengths_m.shape == (2,)
        assert np.all(result.detection_rate >= 0)
        assert np.all(result.false_positive_rate <= 1)


class TestTimingStudies:
    def test_syn_search_seconds_positive(self):
        sec = syn_search_seconds(m_marks=200, w_marks=40, k_channels=10, repeats=3)
        assert 0 < sec < 1.0

    def test_compute_sweep_rows(self):
        result = compute_cost_sweep()
        assert len(result.rows) == 7
        assert "O(m*w*k)" in result.render()

    def test_response_table_rows(self):
        result = response_time_table()
        assert len(result.rows) == 4
        assert len(result.incremental_rows) == 4
        text = result.render()
        assert "incremental" in text
