"""Prefix-equivalence differential suite for the streaming hot path.

The streaming pipeline's correctness contract: after any sequence of
ragged chunk appends, every incrementally maintained structure is
**bitwise** what a cold batch build over the same prefix produces —

* :meth:`DriveBindingIndex.extend` vs a fresh :func:`bind_scan`;
* :class:`TrajectoryBuilder` served trajectories (power, geo, window
  features, content token) vs cold builds, across ragged chunk
  boundaries and truncated tracks;
* the chained builder stream token vs any other chunking of the same
  measurements;
* :meth:`RupsTracker.stream_update` vs the rebuild-per-update baseline
  (``stream_rebuild=True``) and, with anchoring off, vs the historical
  batch :meth:`RupsTracker.update` path;
* the trim cache and ``GeoTrajectory`` distance memos that ride along.

Everything asserts exact equality — no tolerances — in the house style
of ``tests/test_core_binding_cache.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RupsConfig
from repro.core.binding import DriveBindingIndex, bind_scan
from repro.core.tracking import RupsTracker
from repro.core.trajectory import GeoTrajectory, TrajectoryBuilder
from repro.sensors.deadreckoning import EstimatedTrack


def _truncate(track: EstimatedTrack, t: float) -> EstimatedTrack:
    m = int(np.searchsorted(track.times_s, t, side="right"))
    return EstimatedTrack(
        track.times_s[:m], track.distance_m[:m], track.heading_rad[:m]
    )


def _chunk_bounds(scan, track_now) -> int:
    """Index of the first measurement beyond the track's current end."""
    return int(np.searchsorted(scan.times_s, float(track_now.times_s[-1]), side="right"))


#: Ragged cut instants [s] — tiny, large, and back-to-back chunks, some
#: of which advance the mark grid by zero marks and some by hundreds.
RAGGED_EDGES = (13.7, 14.2, 15.0, 33.0, 61.5, 62.0, 97.3, 150.0, 240.0)


def _assert_trajectories_identical(a, b) -> None:
    assert a.n_marks == b.n_marks
    assert a.geo.start_distance_m == b.geo.start_distance_m
    assert np.array_equal(a.channel_ids, b.channel_ids)
    assert np.array_equal(a.power_dbm, b.power_dbm, equal_nan=True)
    assert np.array_equal(a.geo.timestamps_s, b.geo.timestamps_s)
    assert np.array_equal(a.geo.headings_rad, b.geo.headings_rad)
    assert a.content_token == b.content_token


class TestBindingIndexExtend:
    def test_extend_matches_cold_index_at_every_prefix(self, shared_pair):
        rec = shared_pair.rear
        scan, track = rec.scan, rec.estimated
        inc_index = None
        prev_b = 0
        checked = 0
        for t_edge in RAGGED_EDGES:
            trk = _truncate(track, t_edge)
            b = _chunk_bounds(scan, trk)
            chunk = scan.slice(prev_b, b)
            prev_b = b
            if inc_index is None:
                inc_index = DriveBindingIndex(chunk, trk)
                inc_index.extend(scan.slice(b, b), trk)  # empty extend: no-op
            else:
                inc_index.extend(chunk, trk)
            cold = DriveBindingIndex(scan.slice(0, b), trk)
            assert inc_index._n_marks == cold._n_marks
            assert np.array_equal(inc_index._t_marks, cold._t_marks)
            assert np.array_equal(inc_index._headings, cold._headings)
            for length in (None, 150.0):
                try:
                    want = cold.bind(context_length_m=length)
                except ValueError as err:
                    with pytest.raises(ValueError, match=str(err).split("(")[0].strip()[:20]):
                        inc_index.bind(context_length_m=length)
                    continue
                got = inc_index.bind(context_length_m=length)
                _assert_trajectories_identical(got, want)
                checked += 1
        assert checked > 0

    def test_extend_serves_measurements_binned_past_the_old_grid(self, shared_pair):
        # A chunk measured while the track still ended mid-mark rounds
        # past the grid; it must surface once the track grows over it.
        rec = shared_pair.rear
        scan, track = rec.scan, rec.estimated
        trk_a = _truncate(track, 40.0)
        b_a = _chunk_bounds(scan, trk_a)
        index = DriveBindingIndex(scan.slice(0, b_a), trk_a)
        index._prepare_extendable()
        assert any(len(st.pend_bins) for st in index._states.values()), (
            "fixture regression: no beyond-grid measurements to exercise"
        )
        trk_b = _truncate(track, 90.0)
        b_b = _chunk_bounds(scan, trk_b)
        index.extend(scan.slice(b_a, b_b), trk_b)
        cold = DriveBindingIndex(scan.slice(0, b_b), trk_b)
        _assert_trajectories_identical(index.bind(), cold.bind())

    def test_extend_rejects_non_extending_inputs(self, shared_pair):
        rec = shared_pair.rear
        scan, track = rec.scan, rec.estimated
        trk = _truncate(track, 60.0)
        b = _chunk_bounds(scan, trk)
        index = DriveBindingIndex(scan.slice(0, b), trk)
        with pytest.raises(ValueError, match="track must extend"):
            index.extend(scan.slice(b, b), _truncate(track, 30.0))
        with pytest.raises(ValueError, match="overlaps previously appended"):
            index.extend(scan.slice(b - 5, b), trk)
        with pytest.raises(ValueError, match="beyond the provided track"):
            index.extend(scan.slice(b, len(scan)), trk)


class TestTrajectoryBuilderPrefixEquivalence:
    def test_builder_bitwise_equals_cold_build_at_every_prefix(self, shared_pair):
        rec = shared_pair.rear
        scan, track = rec.scan, rec.estimated
        builder = TrajectoryBuilder(context_length_m=150.0)
        prev_b = 0
        checked = 0
        for t_edge in RAGGED_EDGES:
            trk = _truncate(track, t_edge)
            b = _chunk_bounds(scan, trk)
            builder.append(scan.slice(prev_b, b), trk)
            prev_b = b
            try:
                got = builder.trajectory()
            except ValueError:
                with pytest.raises(ValueError):
                    bind_scan(scan.slice(0, b), trk, context_length_m=150.0)
                continue
            want = bind_scan(scan.slice(0, b), trk, context_length_m=150.0)
            _assert_trajectories_identical(got, want)
            # Seeded feature memos must be bitwise the cold ones too.
            for w in (11, 40):
                assert np.array_equal(
                    got.window_features(w), want.window_features(w), equal_nan=True
                )
            checked += 1
        assert checked >= 5

    def test_unchanged_window_returns_previous_object(self, shared_pair):
        rec = shared_pair.rear
        scan, track = rec.scan, rec.estimated
        builder = TrajectoryBuilder(context_length_m=150.0)
        trk = _truncate(track, 60.0)
        b = _chunk_bounds(scan, trk)
        builder.append(scan.slice(0, b), trk)
        first = builder.trajectory()
        # No new information: same served object, memos and all.
        builder.append(scan.slice(b, b), trk)
        assert builder.trajectory() is first

    def test_chained_token_is_chunking_invariant(self, shared_pair):
        rec = shared_pair.rear
        scan, track = rec.scan, rec.estimated
        trk = _truncate(track, 120.0)
        b = _chunk_bounds(scan, trk)
        one = TrajectoryBuilder()
        one.append(scan.slice(0, b), trk)
        many = TrajectoryBuilder()
        prev = 0
        for cut in (7, 8, 1003, b // 2, b):
            cut = max(min(cut, b), prev)
            many.append(scan.slice(prev, cut), trk)
            prev = cut
        if prev < b:
            many.append(scan.slice(prev, b), trk)
        assert one.content_token == many.content_token
        assert one.n_measurements == many.n_measurements == b

    def test_builder_rejects_off_grid_context(self):
        with pytest.raises(ValueError, match="whole multiple"):
            TrajectoryBuilder(context_length_m=150.5)


class TestTrackerStreaming:
    def _run(self, shared_pair, shared_engine, **tracker_kwargs):
        cfg = RupsConfig(context_length_m=600.0, window_channels=30)
        rear, front = shared_pair.rear, shared_pair.front
        tracker = RupsTracker(cfg, **tracker_kwargs)
        scan, track = rear.scan, rear.estimated
        t0, t1 = shared_pair.query_window(context_length_m=600.0)
        prev_b = 0
        updates = []
        for t in np.arange(t0, t1, 10.0):
            trk = _truncate(track, float(t))
            b = _chunk_bounds(scan, trk)
            chunk = scan.slice(prev_b, b)
            prev_b = b
            other = shared_engine.build_trajectory(
                front.scan, front.estimated, at_time_s=float(t)
            )
            updates.append(
                (tracker.stream_update(chunk, trk, other=other), b, trk, float(t))
            )
        return tracker, updates

    @staticmethod
    def _assert_updates_identical(a, b) -> None:
        assert a.mode == b.mode
        assert a.locked_after == b.locked_after
        assert a.degraded == b.degraded
        assert a.estimate.distance_m == b.estimate.distance_m
        assert a.estimate.cause == b.estimate.cause
        assert a.estimate.per_syn_m == b.estimate.per_syn_m
        assert [
            (s.score, s.own_distance_m, s.other_distance_m, s.query_side)
            for s in a.estimate.syn_points
        ] == [
            (s.score, s.own_distance_m, s.other_distance_m, s.query_side)
            for s in b.estimate.syn_points
        ]

    def test_stream_update_bitwise_equals_rebuild_per_update(
        self, shared_pair, shared_engine
    ):
        _, incremental = self._run(shared_pair, shared_engine)
        _, rebuild = self._run(shared_pair, shared_engine, stream_rebuild=True)
        assert len(incremental) == len(rebuild)
        resolved = 0
        for (a, *_), (b, *_) in zip(incremental, rebuild):
            self._assert_updates_identical(a, b)
            resolved += a.estimate.resolved
        assert resolved > 0

    def test_unanchored_stream_update_equals_batch_update(
        self, shared_pair, shared_engine
    ):
        _, streamed = self._run(
            shared_pair, shared_engine, anchored_search=False
        )
        cfg = RupsConfig(context_length_m=600.0, window_channels=30)
        batch = RupsTracker(cfg)
        rear, front = shared_pair.rear, shared_pair.front
        resolved = 0
        for streamed_update, b, trk, t in streamed:
            own = batch._engine.build_trajectory(rear.scan.slice(0, b), trk)
            other = shared_engine.build_trajectory(
                front.scan, front.estimated, at_time_s=t
            )
            batch_update = batch.update(own, other=other)
            self._assert_updates_identical(streamed_update, batch_update)
            resolved += batch_update.estimate.resolved
        assert resolved > 0

    def test_anchored_session_locks_and_anchors(self, shared_pair, shared_engine):
        tracker, updates = self._run(shared_pair, shared_engine)
        assert any(u.locked_after for u, *_ in updates)
        assert tracker._anchor is not None
        assert tracker.last_distance_m() is not None


class TestStreamReset:
    """reset() forgets the neighbour but never the own-vehicle stream."""

    CFG = RupsConfig(context_length_m=600.0, window_channels=30)

    def test_reset_preserves_builder_and_clears_session(
        self, shared_pair, shared_engine
    ):
        rear, front = shared_pair.rear, shared_pair.front
        tracker = RupsTracker(self.CFG, staleness_budget_s=1.0)
        scan, track = rear.scan, rear.estimated
        t0, t1 = shared_pair.query_window(context_length_m=600.0)
        times = [float(t) for t in np.arange(t0, t1, 10.0)]

        def step(t, other, age=0.0):
            trk = _truncate(track, t)
            b = _chunk_bounds(scan, trk)
            chunk = scan.slice(step.prev_b, b)
            step.prev_b = b
            return tracker.stream_update(
                chunk, trk, other=other, context_age_s=age
            )

        step.prev_b = 0
        # Drive until the session locks onto the neighbour.
        i = 0
        while not tracker.locked:
            assert i < len(times) - 2, "session never locked"
            step(
                times[i],
                shared_engine.build_trajectory(
                    front.scan, front.estimated, at_time_s=times[i]
                ),
            )
            i += 1
        builder = tracker._builder
        assert builder is not None
        # Lossy exchange: the context ages past budget, the lock drops.
        u = step(times[i], other=None, age=5.0)
        i += 1
        assert u.degraded and not u.locked_after

        # New neighbour: session state goes, the own stream survives.
        tracker.reset()
        assert tracker._builder is builder
        assert tracker._anchor is None
        assert tracker._trim_cache == {}
        assert tracker._last_context is None
        assert tracker.history == []

        # The surviving builder keeps serving: the next fresh context
        # resolves out of state accumulated *before* the reset.
        u = step(
            times[i],
            shared_engine.build_trajectory(
                front.scan, front.estimated, at_time_s=times[i]
            ),
        )
        assert u.estimate.resolved
        assert tracker.locked

    @pytest.mark.parametrize("anchored_search", [True, False])
    def test_reset_continuation_bitwise_matches_rebuild(
        self, shared_pair, shared_engine, anchored_search
    ):
        """A mid-stream reset() must not disturb prefix equivalence.

        Run the incremental builder and the rebuild-per-update baseline
        through the identical chunk sequence, both reset halfway: every
        update before and after the reset must stay bit-identical.
        """

        def run(**kwargs):
            rear, front = shared_pair.rear, shared_pair.front
            tracker = RupsTracker(
                self.CFG, anchored_search=anchored_search, **kwargs
            )
            scan, track = rear.scan, rear.estimated
            t0, t1 = shared_pair.query_window(context_length_m=600.0)
            times = [float(t) for t in np.arange(t0, t1, 10.0)]
            reset_at = len(times) // 2
            prev_b = 0
            updates = []
            for i, t in enumerate(times):
                trk = _truncate(track, t)
                b = _chunk_bounds(scan, trk)
                chunk = scan.slice(prev_b, b)
                prev_b = b
                if i == reset_at:
                    tracker.reset()
                other = shared_engine.build_trajectory(
                    front.scan, front.estimated, at_time_s=t
                )
                updates.append(tracker.stream_update(chunk, trk, other=other))
            return updates

        incremental = run()
        rebuild = run(stream_rebuild=True)
        assert len(incremental) == len(rebuild)
        resolved = 0
        for a, b in zip(incremental, rebuild):
            TestTrackerStreaming._assert_updates_identical(a, b)
            resolved += a.estimate.resolved
        assert resolved > 0


class TestSatelliteFixes:
    def test_trim_cache_reuses_object_for_unchanged_token(self, shared_pair, shared_engine):
        cfg = RupsConfig(context_length_m=600.0, window_channels=30)
        tracker = RupsTracker(cfg, locked_context_m=150.0)
        rec = shared_pair.rear
        t0, t1 = shared_pair.query_window(context_length_m=600.0)
        own = shared_engine.build_trajectory(rec.scan, rec.estimated, at_time_s=t1)
        first = tracker._trim(own, "own")
        assert first.length_m == 150.0
        assert tracker._trim(own, "own") is first
        # A bit-identical rebuild (different object) still reuses.
        own2 = bind_scan(rec.scan, rec.estimated, at_time_s=t1, context_length_m=600.0)
        assert own2 is not own
        assert tracker._trim(own2, "own") is first

    def test_trim_seeds_tail_features_from_parent(self, shared_pair, shared_engine):
        cfg = RupsConfig(context_length_m=600.0, window_channels=30)
        tracker = RupsTracker(cfg, locked_context_m=150.0)
        rec = shared_pair.rear
        _, t1 = shared_pair.query_window(context_length_m=600.0)
        own = bind_scan(rec.scan, rec.estimated, at_time_s=t1, context_length_m=600.0)
        parent_feats = own.window_features(40)
        tail = tracker._trim(own, "own")
        seeded = tail._window_features[40]
        assert np.shares_memory(seeded, parent_feats)
        cold = bind_scan(
            rec.scan, rec.estimated, at_time_s=t1, context_length_m=600.0
        ).tail(150.0)
        assert np.array_equal(seeded, cold.window_features(40), equal_nan=True)

    def test_geo_distance_memos(self):
        geo = GeoTrajectory(
            timestamps_s=np.arange(5.0),
            headings_rad=np.zeros(5),
            spacing_m=1.0,
            start_distance_m=10.0,
        )
        d1 = geo.distances_m
        assert d1 is geo.distances_m  # memoised, not recomputed
        assert np.array_equal(d1, 10.0 + np.arange(5.0))
        assert geo.end_distance_m == 14.0
        assert geo.end_distance_m == geo.end_distance_m
