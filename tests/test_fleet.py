"""Tests for repro.fleet: sharded store + deterministic batched service.

Unit coverage for placement, ingestion, session lifecycle and the
service's error/ordering contracts, plus the service-vs-direct-tracker
differential: a :class:`FleetService` answering one pair's queries must
walk the session through bit-for-bit the same updates a dedicated
:meth:`RupsTracker.update` loop produces over identically built
trajectories.  The jobs/shared-statics invariance of the full replay
lives in ``tests/test_runtime_determinism.py``.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core.config import RupsConfig
from repro.core.tracking import RupsTracker
from repro.fleet import FleetQuery, FleetService, FleetStore
from repro.sensors.deadreckoning import EstimatedTrack

CFG = RupsConfig(context_length_m=600.0, window_channels=30)


def _feed(store: FleetStore, vehicle_id: str, record, t: float, cuts: dict) -> None:
    """Stream one tick of ``record``'s scan into the store (chunked)."""
    track = record.estimated.until(t)
    bound = int(
        np.searchsorted(
            record.scan.times_s, float(track.times_s[-1]), side="right"
        )
    )
    store.ingest(
        vehicle_id, record.scan.slice(cuts.get(vehicle_id, 0), bound), track
    )
    cuts[vehicle_id] = bound


class TestFleetStore:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetStore(CFG, n_shards=0)
        with pytest.raises(ValueError):
            FleetStore(CFG, ring_chunks=0)

    def test_shard_placement_is_stable_crc32(self):
        store = FleetStore(CFG, n_shards=5)
        for vid in ("p000.front", "p000.rear", "x", ""):
            s = store.shard_of(vid)
            assert 0 <= s < 5
            assert s == zlib.crc32(vid.encode()) % 5
            # Stable across instances (unlike salted hash()).
            assert FleetStore(CFG, n_shards=5).shard_of(vid) == s

    def test_ingest_admits_counts_and_rings(self, shared_pair):
        store = FleetStore(CFG, ring_chunks=2)
        rear = shared_pair.rear
        cuts: dict = {}
        t0 = float(rear.estimated.times_s[0])
        assert not store.has("v1")
        for k in range(1, 5):
            _feed(store, "v1", rear, t0 + 10.0 * k, cuts)
        assert store.has("v1")
        slot = store.slot("v1")
        assert slot.n_chunks == 4
        assert slot.n_measurements == cuts["v1"]
        assert len(slot.ring) == 2  # bounded: only the newest survive
        assert store.recent_chunks("v1") == list(slot.ring)
        assert store.n_vehicles == 1
        assert store.vehicles() == ["v1"]
        assert sum(store.shard_sizes()) == 1

    def test_vehicles_sorted_across_shards(self, shared_pair):
        store = FleetStore(CFG, n_shards=4)
        rear = shared_pair.rear
        t = float(rear.estimated.times_s[0]) + 20.0
        for vid in ("zulu", "alpha", "mike"):
            _feed(store, vid, rear, t, {})
        assert store.vehicles() == ["alpha", "mike", "zulu"]
        assert store.n_vehicles == 3

    def test_trajectory_errors(self, shared_pair):
        store = FleetStore(CFG)
        with pytest.raises(KeyError):
            store.trajectory("ghost")
        rear = shared_pair.rear
        # A vehicle that has barely moved: far too short to bind.
        track = EstimatedTrack(
            rear.estimated.times_s[:2],
            float(rear.estimated.distance_m[0]) + np.array([0.0, 0.05]),
            rear.estimated.heading_rad[:2],
        )
        store.ingest("v1", rear.scan.slice(0, 0), track)
        with pytest.raises(ValueError):
            store.trajectory("v1")

    def test_sessions_are_ordered_pairs(self):
        store = FleetStore(CFG, tracker_kwargs=dict(locked_context_m=150.0))
        ab = store.session("a", "b")
        assert store.session("a", "b") is ab  # resident on reuse
        ba = store.session("b", "a")
        assert ba is not ab  # each side tracks against its own drive
        assert isinstance(ab, RupsTracker)
        assert ab.locked_context_m == 150.0
        assert store.n_sessions == 2

    def test_drop_vehicle_sweeps_all_sessions(self, shared_pair):
        store = FleetStore(CFG, n_shards=4)
        rear = shared_pair.rear
        t = float(rear.estimated.times_s[0]) + 20.0
        for vid in ("a", "b", "c"):
            _feed(store, vid, rear, t, {})
        store.session("a", "b")
        store.session("b", "a")  # owned by the *other* vehicle's shard
        store.session("b", "c")
        store.drop_vehicle("a")
        assert not store.has("a")
        assert store.n_vehicles == 2
        assert store.n_sessions == 1  # only (b, c) survives
        store.drop_vehicle("ghost")  # unknown: no-op
        assert store.n_vehicles == 2


class TestFleetService:
    def _loaded_store(self, shared_pair, times):
        """A store with the shared pair streamed in up to ``times[-1]``."""
        store = FleetStore(CFG)
        cuts: dict = {}
        for t in times:
            _feed(store, "rear", shared_pair.rear, t, cuts)
            _feed(store, "front", shared_pair.front, t, cuts)
        return store

    def test_unknown_vehicle_becomes_error_estimate(self):
        with FleetService(FleetStore(CFG)) as service:
            est = service.estimate(
                FleetQuery(query_id="q0", own_id="a", other_id="b")
            )
        assert est.error == "unknown_vehicle"
        assert not est.resolved
        assert est.distance_m is None
        assert est.mode == "none"
        assert est.degraded

    def test_too_short_drive_becomes_error_estimate(self, shared_pair):
        store = FleetStore(CFG)
        rear = shared_pair.rear
        track = EstimatedTrack(
            rear.estimated.times_s[:2],
            float(rear.estimated.distance_m[0]) + np.array([0.0, 0.05]),
            rear.estimated.heading_rad[:2],
        )
        store.ingest("rear", rear.scan.slice(0, 0), track)
        _feed(store, "front", shared_pair.front, float(rear.estimated.times_s[0]) + 20.0, {})
        with FleetService(store) as service:
            est = service.estimate(
                FleetQuery(query_id="q0", own_id="rear", other_id="front")
            )
        assert est.error == "too_short"
        assert not est.resolved

    def test_tick_answers_in_submission_order(self, shared_pair):
        _, t1 = shared_pair.query_window(context_length_m=600.0)
        store = self._loaded_store(shared_pair, [t1])
        with FleetService(store) as service:
            tickets = [
                service.submit(
                    FleetQuery(query_id=f"q{i}", own_id=own, other_id=other)
                )
                for i, (own, other) in enumerate(
                    [("rear", "front"), ("front", "rear"), ("rear", "ghost")]
                )
            ]
            assert service.n_pending == 3
            answers = service.tick(at_time_s=t1)
        assert service.n_pending == 0
        assert [a.query_id for a in answers] == ["q0", "q1", "q2"]
        for ticket, answer in zip(tickets, answers):
            assert ticket.estimate is answer
        assert answers[2].error == "unknown_vehicle"
        assert answers[0].resolved  # the pair is well within range

    def test_empty_tick_is_a_noop(self):
        with FleetService(FleetStore(CFG)) as service:
            assert service.tick() == []

    def test_chunk_pairs_validated(self):
        with pytest.raises(ValueError):
            FleetService(FleetStore(CFG), chunk_pairs=0)

    def test_service_matches_direct_tracker_loop(self, shared_pair):
        """The batched service path is the tracker loop, exactly.

        Same chunks into two stores; one answered through submit/tick
        (plan -> batched search -> absorb), the other through direct
        :meth:`RupsTracker.update` calls over trajectories served the
        same way.  Every answer must agree field for field.
        """
        t0, t1 = shared_pair.query_window(context_length_m=600.0)
        times = [float(t) for t in np.arange(t0, t1, 20.0)]
        svc_store = FleetStore(CFG)
        ref_store = FleetStore(CFG)
        reference = RupsTracker(CFG)
        svc_cuts: dict = {}
        ref_cuts: dict = {}
        resolved = 0
        with FleetService(svc_store) as service:
            for i, t in enumerate(times):
                for store, cuts in (
                    (svc_store, svc_cuts),
                    (ref_store, ref_cuts),
                ):
                    _feed(store, "rear", shared_pair.rear, t, cuts)
                    _feed(store, "front", shared_pair.front, t, cuts)
                est = service.estimate(
                    FleetQuery(
                        query_id=f"q{i}", own_id="rear", other_id="front"
                    ),
                    at_time_s=t,
                )
                update = reference.update(
                    ref_store.trajectory("rear", at_time_s=t),
                    ref_store.trajectory("front", at_time_s=t),
                )
                assert est.distance_m == update.estimate.distance_m
                assert est.resolved == update.estimate.resolved
                assert est.mode == update.mode
                assert est.locked == update.locked_after
                assert est.degraded == update.degraded
                assert est.cause == update.estimate.cause
                assert est.error is None
                resolved += est.resolved
        assert resolved > 0
        session = svc_store.session("rear", "front")
        assert session.locked == reference.locked
        assert len(session.history) == len(reference.history)
