"""Tests for repro.runtime: ordered, spawn-safe deterministic execution."""

import os

import pytest

from repro.runtime import DeterministicExecutor, resolve_jobs
from repro.runtime.executor import get_shared


# Module level so they pickle into spawn workers.
def _square(x: int) -> int:
    return x * x


def _square_plus_shared(x: int) -> int:
    return x * x + get_shared("offset")


def _pid_task(_: int) -> int:
    return os.getpid()


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4

    def test_none_and_zero_mean_all_cores(self):
        cores = max(os.cpu_count() or 1, 1)
        assert resolve_jobs(None) == cores
        assert resolve_jobs(0) == cores

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestChunks:
    def test_contiguous_and_ordered(self):
        with DeterministicExecutor(jobs=3) as ex:
            chunks = ex.chunks(list(range(10)))
        assert [c for chunk in chunks for c in chunk] == list(range(10))
        assert len(chunks) == 3
        assert {len(c) for c in chunks} == {3, 4}

    def test_fewer_items_than_jobs(self):
        with DeterministicExecutor(jobs=8) as ex:
            chunks = ex.chunks([1, 2])
        assert chunks == [[1], [2]]

    def test_empty(self):
        with DeterministicExecutor(jobs=4) as ex:
            assert ex.chunks([]) == [[]]


class TestInlineExecution:
    def test_map_ordered(self):
        with DeterministicExecutor(jobs=1) as ex:
            assert ex.map_ordered(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_shared_statics(self):
        with DeterministicExecutor(jobs=1, shared={"offset": 7}) as ex:
            assert ex.map_ordered(_square_plus_shared, [2, 3]) == [11, 16]

    def test_shared_statics_cleared_on_close(self):
        with DeterministicExecutor(jobs=1, shared={"offset": 7}) as ex:
            ex.map_ordered(_square_plus_shared, [1])
        with pytest.raises(KeyError, match="offset"):
            get_shared("offset")

    def test_single_item_runs_inline_even_with_many_jobs(self):
        # One item never justifies a pool; the inline path must still
        # install the shared statics.
        with DeterministicExecutor(jobs=4, shared={"offset": 1}) as ex:
            assert ex.map_ordered(_square_plus_shared, [5]) == [26]


class TestParallelExecution:
    def test_results_in_item_order(self):
        with DeterministicExecutor(jobs=2) as ex:
            assert ex.map_ordered(_square, range(8)) == [
                x * x for x in range(8)
            ]

    def test_shared_statics_reach_workers(self):
        with DeterministicExecutor(jobs=2, shared={"offset": 100}) as ex:
            assert ex.map_ordered(_square_plus_shared, [1, 2, 3, 4]) == [
                101, 104, 109, 116,
            ]

    def test_tasks_run_in_other_processes(self):
        with DeterministicExecutor(jobs=2) as ex:
            pids = ex.map_ordered(_pid_task, range(4))
        assert os.getpid() not in pids

    def test_matches_inline(self):
        items = list(range(11))
        with DeterministicExecutor(jobs=1) as serial:
            expect = serial.map_ordered(_square, items)
        with DeterministicExecutor(jobs=3) as parallel:
            assert parallel.map_ordered(_square, items) == expect
