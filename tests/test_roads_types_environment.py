"""Tests for repro.roads.types and repro.roads.environment."""

import pytest

from repro.roads.environment import (
    ENVIRONMENT_PROFILES,
    EnvironmentProfile,
    environment_for,
)
from repro.roads.types import (
    LANE_WIDTH_M,
    ROAD_PROFILES,
    OpennessClass,
    RoadProfile,
    RoadType,
)


class TestRoadProfiles:
    def test_every_type_has_profile(self):
        for rt in RoadType:
            assert rt in ROAD_PROFILES
            assert ROAD_PROFILES[rt].road_type == rt

    def test_paper_openness_classes(self):
        # SVI-A: open = 8-lane/elevated/2-lane suburb; semi-open = 4-lane;
        # close = under elevated.
        assert ROAD_PROFILES[RoadType.URBAN_8LANE].openness == OpennessClass.OPEN
        assert ROAD_PROFILES[RoadType.ELEVATED].openness == OpennessClass.OPEN
        assert ROAD_PROFILES[RoadType.SUBURB_2LANE].openness == OpennessClass.OPEN
        assert ROAD_PROFILES[RoadType.URBAN_4LANE].openness == OpennessClass.SEMI_OPEN
        assert ROAD_PROFILES[RoadType.UNDER_ELEVATED].openness == OpennessClass.CLOSE

    def test_lane_counts(self):
        assert ROAD_PROFILES[RoadType.SUBURB_2LANE].lanes == 2
        assert ROAD_PROFILES[RoadType.URBAN_4LANE].lanes == 4
        assert ROAD_PROFILES[RoadType.URBAN_8LANE].lanes == 8

    def test_width(self):
        p = ROAD_PROFILES[RoadType.URBAN_4LANE]
        assert p.width_m == pytest.approx(4 * LANE_WIDTH_M)

    def test_validation(self):
        with pytest.raises(ValueError):
            RoadProfile(
                road_type=RoadType.URBAN_4LANE,
                openness=OpennessClass.OPEN,
                lanes=0,
                speed_limit_ms=10.0,
                building_height_m=5.0,
                canyon_width_m=20.0,
                traffic_density=0.5,
            )
        with pytest.raises(ValueError):
            RoadProfile(
                road_type=RoadType.URBAN_4LANE,
                openness=OpennessClass.OPEN,
                lanes=2,
                speed_limit_ms=10.0,
                building_height_m=5.0,
                canyon_width_m=20.0,
                traffic_density=1.5,
            )

    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            ROAD_PROFILES[RoadType.URBAN_4LANE].lanes = 6  # type: ignore

    def test_mapping_is_readonly(self):
        with pytest.raises(TypeError):
            ROAD_PROFILES[RoadType.URBAN_4LANE] = None  # type: ignore


class TestEnvironmentProfiles:
    def test_every_type_has_environment(self):
        for rt in RoadType:
            assert isinstance(environment_for(rt), EnvironmentProfile)

    def test_lookup_by_profile(self):
        env = environment_for(ROAD_PROFILES[RoadType.SUBURB_2LANE])
        assert env is ENVIRONMENT_PROFILES[RoadType.SUBURB_2LANE]

    def test_gps_ordering_matches_paper(self):
        # Fig 12 ordering: suburb best, urban mid, under-elevated worst.
        suburb = environment_for(RoadType.SUBURB_2LANE).gps_sigma_m
        urban4 = environment_for(RoadType.URBAN_4LANE).gps_sigma_m
        under = environment_for(RoadType.UNDER_ELEVATED).gps_sigma_m
        assert suburb < urban4 < under

    def test_under_elevated_has_outages(self):
        assert environment_for(RoadType.UNDER_ELEVATED).gps_outage_prob > 0
        assert environment_for(RoadType.SUBURB_2LANE).gps_outage_prob == 0

    def test_clutter_deepest_under_elevated(self):
        clutters = {rt: environment_for(rt).clutter_loss_db for rt in RoadType}
        assert max(clutters, key=clutters.get) == RoadType.UNDER_ELEVATED

    def test_gsm_params_vary_mildly(self):
        # SVI-C: "GSM signals are pervasive and stable in urban settings"
        # — shadowing varies far less across environments than GPS error.
        sigmas = [environment_for(rt).shadow_sigma_db for rt in RoadType]
        gps = [environment_for(rt).gps_sigma_m for rt in RoadType]
        assert max(sigmas) / min(sigmas) < max(gps) / min(gps)
