"""Tests for the experiments package (metrics, reporting, traces, registry,
and light-weight runs of the study functions)."""

import numpy as np
import pytest

from repro.core.syn import SynPoint
from repro.experiments.metrics import (
    QueryBatch,
    QueryOutcome,
    relative_distance_error,
    syn_point_error,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import (
    render_cdf_summary,
    render_series,
    render_table,
)
from repro.experiments.stream import event_grid
from repro.experiments.traces import RoadSurvey, drive_pair
from repro.roads.types import RoadType


class TestEventGrid:
    def test_float_step_rounding_never_adds_a_tick(self):
        """Regression for the ``np.arange`` float-step bug.

        ``0.1 * 3`` is 0.30000000000000004 in binary floating point;
        ``np.arange(0.0, 0.1 * 3, 0.1)`` computes its length from that
        inflated bound and emits a 4th tick for a 3-period span.  The
        grid must pin the event count to the duration.
        """
        grid = event_grid(0.0, 0.1 * 3, 0.1)
        assert len(grid) == 3
        assert np.all(grid < 0.1 * 3)

    @pytest.mark.parametrize("n", [1, 7, 100, 481])
    def test_count_matches_duration(self, n):
        period = 0.5
        grid = event_grid(10.0, 10.0 + n * period, period)
        assert len(grid) == n
        assert grid[0] == 10.0
        assert np.all(np.diff(grid) == pytest.approx(period))
        assert np.all(grid < 10.0 + n * period)

    def test_partial_last_period_still_fires(self):
        grid = event_grid(0.0, 1.25, 0.5)
        assert len(grid) == 3  # 0.0, 0.5, 1.0

    def test_empty_and_invalid_windows(self):
        assert len(event_grid(5.0, 5.0, 0.5)) == 0
        assert len(event_grid(5.0, 4.0, 0.5)) == 0
        with pytest.raises(ValueError):
            event_grid(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            event_grid(0.0, 1.0, -0.1)


class TestMetrics:
    def test_rde(self):
        assert relative_distance_error(10.0, 12.5) == pytest.approx(2.5)
        assert relative_distance_error(12.5, 10.0) == pytest.approx(2.5)

    def test_query_outcome(self):
        o = QueryOutcome(time_s=1.0, truth_m=20.0, estimate_m=18.0)
        assert o.resolved
        assert o.rde_m == pytest.approx(2.0)
        u = QueryOutcome(time_s=1.0, truth_m=20.0, estimate_m=None)
        assert not u.resolved
        with pytest.raises(ValueError):
            _ = u.rde_m

    def test_query_batch_summary(self):
        batch = QueryBatch()
        batch.append(QueryOutcome(0.0, 10.0, 12.0, syn_errors_m=(1.0, 2.0)))
        batch.append(QueryOutcome(1.0, 10.0, None))
        assert batch.n_queries == 2
        assert batch.n_resolved == 1
        assert batch.resolution_rate == pytest.approx(0.5)
        assert np.allclose(batch.rde(), [2.0])
        assert np.allclose(batch.syn_errors(), [1.0, 2.0])
        assert batch.mean_rde() == pytest.approx(2.0)

    def test_empty_batch_mean_nan(self):
        assert np.isnan(QueryBatch().mean_rde())

    def test_syn_point_error_exact_on_perfect_sensors(self, shared_pair):
        # A SYN point naming the positions both vehicles truly shared has
        # near-zero error; fabricate one from ground truth.
        pair = shared_pair
        tq = 200.0
        s_rear_true = float(pair.rear.motion.arc_length_at(tq))
        t_front = float(pair.front.motion.time_at_distance(s_rear_true))
        syn = SynPoint(
            score=2.0,
            own_distance_m=float(pair.rear.estimated.distance_at(tq)),
            other_distance_m=float(pair.front.estimated.distance_at(t_front)),
            own_offset_m=0.0,
            other_offset_m=0.0,
            window_length_m=85.0,
            query_side="own",
        )
        err = syn_point_error(syn, pair.rear, pair.front)
        assert err < 1.5


class TestReporting:
    def test_render_table(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", float("nan")]], title="T")
        assert "T" in out
        assert "2.50" in out
        assert "n/a" in out

    def test_render_table_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_table_numpy_scalars(self):
        """Regression: non-float64 numpy scalars must format fixed-width.

        ``np.float32(2.5)`` used to fall through ``_fmt`` to ``str()``
        and render full precision (breaking column alignment), and a
        ``np.float32`` NaN skipped the "n/a" path entirely.
        """
        out = render_table(
            ["a", "b", "c", "d"],
            [
                [np.float32(2.5), np.float64("nan"), np.int32(7), np.bool_(True)],
                [np.float32("nan"), np.float16(1.25), np.int64(-3), np.bool_(False)],
            ],
        )
        lines = out.splitlines()
        assert "2.50" in out
        assert out.count("n/a") == 2
        assert "7" in out and "-3" in out
        assert "True" in out and "False" in out
        # fixed-width: every row renders at the same width
        assert len({len(line) for line in lines}) == 1

    def test_render_table_fraction_is_real(self):
        from fractions import Fraction

        out = render_table(["x"], [[Fraction(1, 4)]])
        assert "0.25" in out

    def test_render_cdf_summary(self):
        out = render_cdf_summary({"s": np.array([1.0, 3.0, 9.0])}, grid=(2.0, 10.0))
        assert "P(<=2.0m)" in out
        assert "0.33" in out

    def test_render_series(self):
        out = render_series(
            np.array([1.0, 2.0]), {"y": np.array([0.1, 0.2])}, x_name="x"
        )
        assert "0.10" in out

    def test_render_series_length_check(self):
        with pytest.raises(ValueError):
            render_series(np.array([1.0]), {"y": np.array([1.0, 2.0])}, "x")


class TestRoadSurvey:
    def test_fields_cached_and_deterministic(self, small_plan):
        survey = RoadSurvey(n_roads=3, length_m=60.0, plan=small_plan, seed=2)
        f1 = survey.field(0)
        assert survey.field(0) is f1
        survey2 = RoadSurvey(n_roads=3, length_m=60.0, plan=small_plan, seed=2)
        assert np.allclose(f1.static_rssi(0), survey2.field(0).static_rssi(0))

    def test_environment_mix(self, small_plan):
        survey = RoadSurvey(n_roads=6, length_m=60.0, plan=small_plan)
        types = {survey.road_type_of(i) for i in range(6)}
        assert len(types) == 3

    def test_power_vector_shape(self, small_plan):
        survey = RoadSurvey(n_roads=2, length_m=60.0, plan=small_plan)
        pv = survey.power_vector(0, position_m=30.0, time_s=10.0)
        assert pv.shape == (small_plan.n_channels,)

    def test_out_of_range_road(self, small_plan):
        survey = RoadSurvey(n_roads=2, length_m=60.0, plan=small_plan)
        with pytest.raises(IndexError):
            survey.field(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RoadSurvey(n_roads=1)
        with pytest.raises(ValueError):
            RoadSurvey(length_m=0.0)


class TestDrivePair:
    def test_query_window_sane(self, shared_pair):
        t_lo, t_hi = shared_pair.query_window(context_length_m=600.0)
        assert shared_pair.scenario.t0 < t_lo < t_hi <= shared_pair.scenario.t1

    def test_same_seed_reproducible(self, small_plan):
        a = drive_pair(duration_s=120.0, plan=small_plan, seed=7)
        b = drive_pair(duration_s=120.0, plan=small_plan, seed=7)
        assert np.array_equal(a.front.scan.rssi_dbm, b.front.scan.rssi_dbm)
        assert np.array_equal(a.rear.estimated.distance_m, b.rear.estimated.distance_m)

    def test_road_type_respected(self, small_plan):
        pair = drive_pair(
            road_type=RoadType.SUBURB_2LANE, duration_s=120.0, plan=small_plan, seed=1
        )
        assert pair.road_type == RoadType.SUBURB_2LANE
        assert pair.field.environment.gps_sigma_m < 5.0


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        for exp_id in (
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "t-compute",
            "t-respond",
            "t-window",
            "t-loss",
        ):
            assert exp_id in EXPERIMENTS

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_fig1(self):
        result = run_experiment("fig1", seed=3)
        assert result.same_road_correlation > result.cross_road_correlation
        assert "Fig 1" in result.render()

    def test_run_t_respond(self):
        result = run_experiment("t-respond")
        text = result.render()
        assert "182" in text or "packets" in text

    def test_run_t_loss_small(self):
        result = run_experiment(
            "t-loss",
            loss_probs=(0.0, 0.4),
            burstiness=(0.0,),
            n_steps=12,
            seed=1,
        )
        assert len(result.cells) == 2
        lossless, lossy = result.rows_for(0.0)
        assert lossless.message_delivery == 1.0
        assert lossless.lock_retention >= lossy.lock_retention
        assert lossless.tracking_error_m <= lossy.tracking_error_m
        assert "Loss sweep" in result.render()
