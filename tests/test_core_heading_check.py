"""Tests for the heading-consistency SYN gate (geo-trajectory comparison)."""

import numpy as np
import pytest

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.core.syn import SynPoint, heading_agreement_rad
from repro.core.trajectory import GeoTrajectory, GsmTrajectory

from tests.test_core_syn_resolver import synthetic_pair


def _with_headings(traj: GsmTrajectory, headings: np.ndarray) -> GsmTrajectory:
    geo = GeoTrajectory(
        timestamps_s=traj.geo.timestamps_s,
        headings_rad=headings,
        spacing_m=traj.geo.spacing_m,
        start_distance_m=traj.geo.start_distance_m,
    )
    return GsmTrajectory(traj.power_dbm, traj.channel_ids, geo)


def _syn_for(rear, front, gap=30.0):
    return SynPoint(
        score=1.5,
        own_distance_m=rear.geo.end_distance_m,
        other_distance_m=front.geo.end_distance_m - gap,
        own_offset_m=0.0,
        other_offset_m=gap,
        window_length_m=60.0,
        query_side="own",
    )


class TestHeadingAgreement:
    def test_identical_headings_agree(self):
        rear, front = synthetic_pair(gap_m=30.0)
        syn = _syn_for(rear.geo and rear, front)
        assert heading_agreement_rad(rear, front, syn) == pytest.approx(0.0)

    def test_same_curve_agrees(self):
        rear, front = synthetic_pair(gap_m=30.0)
        # Both vehicles drove the same physical curve: headings are a
        # function of road position, which differs per trajectory index.
        curve = lambda dist: 0.5 * np.sin(dist / 60.0)
        rear2 = _with_headings(rear, curve(np.arange(rear.n_marks, dtype=float)))
        # front's window [end-30-60, end-30] corresponds to the same road
        # stretch as rear's last 60 m; reconstruct via road coordinates.
        road_pos_front = np.arange(front.n_marks, dtype=float) + (
            rear.n_marks - 1 + 30.0 - (front.n_marks - 1)
        )
        front2 = _with_headings(front, curve(road_pos_front))
        syn = _syn_for(rear2, front2)
        assert heading_agreement_rad(rear2, front2, syn) < 0.05

    def test_perpendicular_roads_disagree(self):
        rear, front = synthetic_pair(gap_m=30.0)
        rear2 = _with_headings(rear, np.zeros(rear.n_marks))
        front2 = _with_headings(front, np.full(front.n_marks, np.pi / 2))
        syn = _syn_for(rear2, front2)
        assert heading_agreement_rad(rear2, front2, syn) == pytest.approx(
            np.pi / 2, abs=1e-9
        )

    def test_wraparound_handled(self):
        rear, front = synthetic_pair(gap_m=30.0)
        rear2 = _with_headings(rear, np.full(rear.n_marks, np.pi - 0.05))
        front2 = _with_headings(front, np.full(front.n_marks, -np.pi + 0.05))
        syn = _syn_for(rear2, front2)
        # 0.1 rad apart across the seam, not ~2*pi.
        assert heading_agreement_rad(rear2, front2, syn) == pytest.approx(
            0.1, abs=1e-6
        )

    def test_window_outside_trajectory_raises(self):
        rear, front = synthetic_pair(gap_m=30.0)
        bad = SynPoint(
            score=1.5,
            own_distance_m=rear.geo.start_distance_m + 5.0,  # too early
            other_distance_m=front.geo.end_distance_m,
            own_offset_m=0.0,
            other_offset_m=0.0,
            window_length_m=60.0,
            query_side="own",
        )
        with pytest.raises(ValueError, match="window"):
            heading_agreement_rad(rear, front, bad)


class TestEngineGate:
    CFG = dict(
        context_length_m=500.0,
        window_length_m=60.0,
        window_channels=20,
        n_syn_points=3,
        syn_stride_m=20.0,
    )

    def test_consistent_headings_pass(self):
        rear, front = synthetic_pair(gap_m=25.0)
        engine = RupsEngine(RupsConfig(heading_check=True, **self.CFG))
        est = engine.estimate_relative_distance(rear, front)
        assert est.resolved
        assert est.distance_m == pytest.approx(25.0, abs=3.0)

    def test_wildly_disagreeing_headings_rejected(self):
        rear, front = synthetic_pair(gap_m=25.0)
        front_turned = _with_headings(
            front, np.full(front.n_marks, np.pi / 2)
        )
        engine = RupsEngine(RupsConfig(heading_check=True, **self.CFG))
        est = engine.estimate_relative_distance(rear, front_turned)
        assert not est.resolved

    def test_gate_off_by_default(self):
        rear, front = synthetic_pair(gap_m=25.0)
        front_turned = _with_headings(front, np.full(front.n_marks, np.pi / 2))
        engine = RupsEngine(RupsConfig(**self.CFG))
        est = engine.estimate_relative_distance(rear, front_turned)
        # Without the gate, signal similarity alone decides.
        assert est.resolved

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RupsConfig(max_heading_disagreement_rad=0.0)
