"""Tests for repro.gsm.band: channel plans."""

import numpy as np
import pytest

from repro.gsm.band import (
    EVAL_SUBSET_115,
    FM_BAND,
    RGSM900,
    SCAN_TIME_PER_CHANNEL_S,
    ChannelPlan,
)


class TestRGSM900:
    def test_194_channels(self):
        # SIII-A: "all 194 channels in the R-GSM-900 band"
        assert RGSM900.n_channels == 194

    def test_full_scan_time_matches_paper(self):
        # "can be scanned within 2.85 seconds"
        assert RGSM900.full_scan_time_s == pytest.approx(2.85)

    def test_scan_time_is_about_15ms(self):
        # SV-C: "it takes about 15ms to sense a channel"
        assert SCAN_TIME_PER_CHANNEL_S == pytest.approx(0.015, rel=0.03)

    def test_frequency_range(self):
        f = RGSM900.frequencies_hz
        assert f.min() == pytest.approx(921.2e6)
        assert f.max() == pytest.approx(959.8e6)

    def test_channel_spacing_200khz(self):
        f = np.sort(RGSM900.frequencies_hz)
        assert np.allclose(np.diff(f), 0.2e6)

    def test_unique_arfcns(self):
        assert len(np.unique(RGSM900.arfcns)) == 194


class TestEvalSubset:
    def test_115_channels(self):
        # SVI-A: "the selected 115 channels"
        assert EVAL_SUBSET_115.n_channels == 115

    def test_subset_of_full_band(self):
        assert np.all(np.isin(EVAL_SUBSET_115.arfcns, RGSM900.arfcns))

    def test_spans_the_band(self):
        assert EVAL_SUBSET_115.frequencies_hz.min() == RGSM900.frequencies_hz.min()
        assert EVAL_SUBSET_115.frequencies_hz.max() == RGSM900.frequencies_hz.max()


class TestChannelPlan:
    def test_subset(self):
        sub = RGSM900.subset(np.array([0, 5, 10]))
        assert sub.n_channels == 3
        assert np.array_equal(sub.arfcns, RGSM900.arfcns[[0, 5, 10]])

    def test_subset_bad_indices(self):
        with pytest.raises(IndexError):
            RGSM900.subset(np.array([500]))
        with pytest.raises(ValueError):
            RGSM900.subset(np.array([], dtype=int))

    def test_index_of(self):
        arfcn = int(RGSM900.arfcns[7])
        assert RGSM900.index_of(arfcn) == 7
        with pytest.raises(KeyError):
            RGSM900.index_of(99999)

    def test_len(self):
        assert len(RGSM900) == 194

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            ChannelPlan("x", np.array([1, 1]), np.array([1e8, 2e8]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ChannelPlan("x", np.array([1, 2]), np.array([1e8]))

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            ChannelPlan("x", np.array([1]), np.array([0.0]))

    def test_fm_preset_faster_scan(self):
        assert FM_BAND.scan_time_s < RGSM900.scan_time_s
