"""Tests for repro.gsm.routefield: multi-segment composed fields."""

import numpy as np
import pytest

from repro.gsm.band import RGSM900
from repro.gsm.field import SignalField
from repro.gsm.routefield import RouteSignalField, build_route_field
from repro.roads.network import RoadNetworkConfig, generate_network
from repro.roads.route import build_route, random_route
from repro.roads.types import RoadType


@pytest.fixture(scope="module")
def tiny_plan():
    return RGSM900.subset(np.arange(0, 194, 10), name="tiny-20")


@pytest.fixture(scope="module")
def network():
    return generate_network(RoadNetworkConfig(blocks_x=4, blocks_y=3), seed=8)


@pytest.fixture(scope="module")
def route(network):
    return random_route(network, min_length_m=1200.0, rng=3)


@pytest.fixture(scope="module")
def route_field(network, route, tiny_plan):
    return build_route_field(network, route, plan=tiny_plan, seed=11)


class TestBuildRouteField:
    def test_one_field_per_leg(self, route_field, route):
        assert len(route_field.fields) == len(route.legs)
        assert route_field.length_m == pytest.approx(route.length)

    def test_repeated_segments_share_field(self, network, tiny_plan):
        seg = network.segments[0]
        r = build_route(network, [seg.u, seg.v, seg.u])  # out and back
        rf = build_route_field(network, r, plan=tiny_plan, seed=11)
        assert rf.fields[0] is rf.fields[1]

    def test_deterministic(self, network, route, tiny_plan):
        a = build_route_field(network, route, plan=tiny_plan, seed=11)
        b = build_route_field(network, route, plan=tiny_plan, seed=11)
        assert np.allclose(
            a.fields[0].static_rssi(0), b.fields[0].static_rssi(0)
        )

    def test_leg_count_validation(self, route, route_field):
        with pytest.raises(ValueError):
            RouteSignalField(route, route_field.fields[:-1])

    def test_mixed_plans_rejected(self, network, tiny_plan):
        seg0 = network.segments[0]
        r2 = build_route(network, [seg0.u, seg0.v, seg0.u])  # two legs
        rf_a = build_route_field(network, r2, plan=tiny_plan, seed=1)
        other_plan = RGSM900.subset(np.arange(20), name="other")
        rf_b = build_route_field(network, r2, plan=other_plan, seed=1)
        with pytest.raises(ValueError, match="plan"):
            RouteSignalField(r2, [rf_a.fields[0], rf_b.fields[1]])

    def test_environment_is_dominant_type(self, route_field, route):
        totals = {}
        for leg in route.legs:
            rt = leg.segment.road_type
            totals[rt] = totals.get(rt, 0.0) + leg.segment.length
        dominant = max(totals, key=totals.get)
        from repro.roads.environment import ENVIRONMENT_PROFILES

        assert route_field.environment is ENVIRONMENT_PROFILES[dominant]


class TestMeasureDispatch:
    def test_matches_per_segment_fields(self, route_field, route):
        # A measurement at route arc s must equal the leg field's value at
        # the local coordinate.
        s_route = np.array([route.legs[1].start_offset + 5.0])
        t = np.array([10.0])
        ci = np.array([3])
        via_route = route_field.measure(t, s_route, ci)
        leg = route.legs[1]
        local = 5.0 if not leg.reverse else leg.segment.length - 5.0
        direct = route_field.fields[1].measure(t, np.array([local]), ci)
        assert np.allclose(via_route, direct)

    def test_vectorized_across_legs(self, route_field, route):
        s = np.linspace(1.0, route.length - 1.0, 50)
        t = np.full(50, 20.0)
        ci = np.tile(np.arange(5), 10)
        out = route_field.measure(t, s, ci)
        assert out.shape == (50,)
        assert np.all(np.isfinite(out))
        assert np.all(out >= route_field.config.rx_floor_dbm)

    def test_alignment_enforced(self, route_field):
        with pytest.raises(ValueError):
            route_field.measure(
                np.array([1.0]), np.array([1.0, 2.0]), np.array([0])
            )

    def test_vehicle_key_passthrough(self, route_field, route):
        s = np.full(10, route.length / 2)
        t = np.full(10, 5.0)
        ci = np.arange(10)
        a = route_field.measure(t, s, ci, vehicle_key="a")
        b = route_field.measure(t, s, ci, vehicle_key="b")
        assert not np.allclose(a, b)


class TestGeometryAdapter:
    def test_position_matches_route(self, route_field, route):
        s = route.length * 0.37
        assert np.allclose(route_field.polyline.position(s), route.position(s))

    def test_position_vectorized(self, route_field, route):
        s = np.linspace(0, route.length, 9)
        out = route_field.polyline.position(s)
        assert out.shape == (9, 2)

    def test_heading_matches_route(self, route_field, route):
        s = route.length * 0.61
        assert route_field.polyline.heading(s) == pytest.approx(
            route.heading(s), abs=1e-9
        )

    def test_heading_vectorized(self, route_field, route):
        s = np.linspace(1.0, route.length - 1.0, 7)
        out = route_field.polyline.heading(s)
        assert np.asarray(out).shape == (7,)

    def test_project_inverts_position(self, route_field, route):
        s = route.length * 0.5
        pos = route.position(s)
        s_back = route_field.polyline.project(pos)
        assert s_back == pytest.approx(s, abs=1.0)


class TestRouteDriveIntegration:
    def test_full_pipeline_over_route(self, network, tiny_plan):
        from repro.core import RupsConfig, RupsEngine
        from repro.gsm.scanner import RadioGroup
        from repro.vehicles import build_following_scenario, simulate_drive

        route = random_route(network, min_length_m=2500.0, rng=9)
        field = build_route_field(network, route, plan=tiny_plan, seed=2)
        scn = build_following_scenario(duration_s=200.0, speed_limit_ms=11.0, seed=6)
        assert scn.max_arc_length() < field.length_m
        group = RadioGroup(tiny_plan, n_radios=4)
        front = simulate_drive(field, scn.front, group, seed=3, vehicle_key="f")
        rear = simulate_drive(field, scn.rear, group, seed=3, vehicle_key="r")
        engine = RupsEngine(RupsConfig(context_length_m=600.0, window_channels=15))
        tq = 180.0
        own = engine.build_trajectory(rear.scan, rear.estimated, at_time_s=tq)
        other = engine.build_trajectory(front.scan, front.estimated, at_time_s=tq)
        est = engine.estimate_relative_distance(own, other)
        assert est.resolved
        truth = float(scn.true_relative_distance(tq))
        assert est.distance_m == pytest.approx(truth, abs=10.0)


class TestProjectVectorised:
    def _reference_project(self, route, point):
        # The original per-leg loop, kept as the differential reference.
        best_s, best_d = 0.0, np.inf
        for leg in route.legs:
            local = leg.segment.polyline.project(point)
            pos = np.asarray(leg.segment.polyline.position(local))
            d = float(np.linalg.norm(pos - np.asarray(point, dtype=float)))
            if d < best_d:
                best_d = d
                travel = leg.segment.length - local if leg.reverse else local
                best_s = leg.start_offset + travel
        return best_s

    def test_matches_per_leg_loop(self, route_field, route):
        rng = np.random.default_rng(17)
        pts = np.vstack(
            [leg.segment.polyline.points for leg in route.legs]
        )
        lo, hi = pts.min(axis=0) - 50.0, pts.max(axis=0) + 50.0
        adapter = route_field.polyline
        for point in rng.uniform(lo, hi, size=(200, 2)):
            expect = self._reference_project(route, point)
            got = adapter.project(point)
            # Near-exact ties between legs (junction vertices) may
            # resolve to the other endpoint of the same junction, which
            # is the same route position; otherwise exact.
            assert got == pytest.approx(expect, abs=1e-6)

    def test_roundtrip_on_route_points(self, route_field, route):
        adapter = route_field.polyline
        for s in np.linspace(1.0, route.length - 1.0, 25):
            point = adapter.position(float(s))
            assert adapter.project(point) == pytest.approx(float(s), abs=1e-6)
