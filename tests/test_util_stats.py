"""Tests for repro.util.stats: CDFs, confidence intervals, exceedance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util.stats import (
    ConfidenceInterval,
    cdf_at,
    empirical_cdf,
    exceedance_probability,
    mean_confidence_interval,
    percentile_summary,
)

finite_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=50),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestEmpiricalCdf:
    def test_basic(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert np.array_equal(x, [1.0, 2.0, 3.0])
        assert np.allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_nan_dropped(self):
        x, f = empirical_cdf([1.0, np.nan, 2.0])
        assert x.size == 2
        assert f[-1] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([np.nan])

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_cdf_properties(self, samples):
        x, f = empirical_cdf(samples)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(f) > 0) or f.size == 1
        assert f[-1] == pytest.approx(1.0)
        assert np.all((f > 0) & (f <= 1))

    def test_cdf_at(self):
        vals = cdf_at([1.0, 2.0, 3.0, 4.0], np.array([0.5, 2.0, 10.0]))
        assert np.allclose(vals, [0.0, 0.5, 1.0])

    def test_cdf_at_exported(self):
        import repro.util.stats as stats

        assert "cdf_at" in stats.__all__
        from repro.util import cdf_at as reexported

        assert reexported is cdf_at


class TestMeanConfidenceInterval:
    def test_contains_mean(self):
        samples = np.random.default_rng(0).normal(5.0, 1.0, 200)
        ci = mean_confidence_interval(samples)
        assert ci.lower < np.mean(samples) < ci.upper
        assert 5.0 in ci

    def test_single_sample_degenerate(self):
        ci = mean_confidence_interval([4.0])
        assert ci.mean == ci.lower == ci.upper == 4.0
        assert ci.n == 1

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = mean_confidence_interval(rng.normal(0, 1, 10))
        large = mean_confidence_interval(rng.normal(0, 1, 1000))
        assert large.half_width < small.half_width

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], level=1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_higher_level_wider(self):
        samples = np.random.default_rng(2).normal(0, 1, 50)
        narrow = mean_confidence_interval(samples, level=0.90)
        wide = mean_confidence_interval(samples, level=0.99)
        assert wide.half_width > narrow.half_width

    def test_nan_excluded(self):
        ci = mean_confidence_interval([1.0, np.nan, 3.0])
        assert ci.n == 2
        assert ci.mean == pytest.approx(2.0)


class TestPercentileSummary:
    def test_values(self):
        summary = percentile_summary(np.arange(101), percentiles=(50.0, 90.0))
        assert summary[50.0] == pytest.approx(50.0)
        assert summary[90.0] == pytest.approx(90.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_summary([])


class TestExceedance:
    def test_basic(self):
        assert exceedance_probability([1, 2, 3, 4], 3) == pytest.approx(0.5)

    def test_all_below(self):
        assert exceedance_probability([1, 2], 10) == 0.0

    def test_all_above(self):
        assert exceedance_probability([5, 6], 1) == 1.0

    @given(finite_arrays, st.floats(-1e6, 1e6, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_in_unit_interval(self, samples, thr):
        p = exceedance_probability(samples, thr)
        assert 0.0 <= p <= 1.0


class TestConfidenceIntervalDataclass:
    def test_contains(self):
        ci = ConfidenceInterval(mean=1.0, lower=0.5, upper=1.5, level=0.95, n=10)
        assert 1.2 in ci
        assert 2.0 not in ci

    def test_half_width(self):
        ci = ConfidenceInterval(mean=1.0, lower=0.5, upper=1.5, level=0.95, n=10)
        assert ci.half_width == pytest.approx(0.5)
