"""Tests for repro.sensors.imu, reorientation, and heading."""

import numpy as np
import pytest

from repro.sensors.heading import heading_from_magnetometer, smooth_heading
from repro.sensors.imu import (
    GRAVITY,
    ImuConfig,
    ImuStream,
    random_rotation_matrix,
    simulate_imu,
)
from repro.sensors.reorientation import estimate_rotation_matrix, rotation_error_deg
from repro.vehicles.kinematics import urban_speed_profile


def _heading_fn(psi: float = 0.3):
    return lambda s: np.full_like(np.asarray(s, dtype=float), psi)


@pytest.fixture(scope="module")
def drive_imu():
    motion = urban_speed_profile(120.0, 14.0, rng=4, stop_rate_per_s=1 / 40.0)
    mounted = simulate_imu(motion, _heading_fn(), rng=7)
    return motion, mounted


class TestRandomRotation:
    def test_orthonormal(self):
        r = random_rotation_matrix(np.random.default_rng(0))
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-10)
        assert np.linalg.det(r) == pytest.approx(1.0)


class TestSimulateImu:
    def test_stream_shapes(self, drive_imu):
        motion, mounted = drive_imu
        n = len(mounted.stream)
        assert mounted.stream.accel.shape == (n, 3)
        assert n == pytest.approx(motion.duration_s * mounted.config.rate_hz, rel=0.01)

    def test_gravity_dominates_mean_accel(self, drive_imu):
        _, mounted = drive_imu
        mean_norm = np.linalg.norm(mounted.stream.accel.mean(axis=0))
        assert mean_norm == pytest.approx(GRAVITY, rel=0.05)

    def test_identity_mounting_axes(self):
        motion = urban_speed_profile(60.0, 14.0, rng=1)
        mounted = simulate_imu(motion, _heading_fn(), mounting=np.eye(3), rng=0)
        # With identity mounting, mean accel points along sensor +z.
        mean = mounted.stream.accel.mean(axis=0)
        assert mean[2] == pytest.approx(GRAVITY, rel=0.05)
        assert abs(mean[0]) < 0.5 and abs(mean[1]) < 0.5

    def test_mounting_validation(self):
        motion = urban_speed_profile(10.0, 14.0, rng=1)
        with pytest.raises(ValueError):
            simulate_imu(motion, _heading_fn(), mounting=np.eye(2))
        with pytest.raises(ValueError):
            simulate_imu(motion, _heading_fn(), mounting=2 * np.eye(3))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ImuConfig(rate_hz=0.0)
        with pytest.raises(ValueError):
            ImuConfig(accel_noise=-1.0)

    def test_stream_validation(self):
        with pytest.raises(ValueError):
            ImuStream(
                times_s=np.zeros(4),
                accel=np.zeros((3, 3)),
                gyro=np.zeros((4, 3)),
                mag=np.zeros((4, 3)),
            )


class TestReorientation:
    def test_recovers_mounting(self, drive_imu):
        motion, mounted = drive_imu
        # Use the OBD speed as dynamic reference, like the pipeline does.
        t_ref = motion.times_s[::10]
        v_ref = motion.v_ms[::10]
        est = estimate_rotation_matrix(
            mounted.stream, speed_times_s=t_ref, speed_ms=v_ref
        )
        err = rotation_error_deg(est, mounted.rotation)
        assert err < 8.0

    def test_without_speed_reference(self, drive_imu):
        _, mounted = drive_imu
        est = estimate_rotation_matrix(mounted.stream)
        err = rotation_error_deg(est, mounted.rotation)
        assert err < 25.0  # coarser, but unambiguous on a stop-go drive

    def test_result_is_rotation(self, drive_imu):
        _, mounted = drive_imu
        est = estimate_rotation_matrix(mounted.stream)
        assert np.allclose(est @ est.T, np.eye(3), atol=1e-8)
        assert np.linalg.det(est) == pytest.approx(1.0)

    def test_needs_samples(self):
        tiny = ImuStream(
            times_s=np.arange(3, dtype=float),
            accel=np.zeros((3, 3)),
            gyro=np.zeros((3, 3)),
            mag=np.zeros((3, 3)),
        )
        with pytest.raises(ValueError):
            estimate_rotation_matrix(tiny)


class TestHeading:
    def test_recovers_true_heading(self, drive_imu):
        motion, mounted = drive_imu
        t_ref = motion.times_s[::10]
        v_ref = motion.v_ms[::10]
        rot = estimate_rotation_matrix(
            mounted.stream, speed_times_s=t_ref, speed_ms=v_ref
        )
        _, psi = heading_from_magnetometer(mounted.stream, rot)
        # True heading is 0.3 rad everywhere.
        err = np.abs(np.arctan2(np.sin(psi - 0.3), np.cos(psi - 0.3)))
        assert np.median(err) < 0.15

    def test_rotation_shape_check(self, drive_imu):
        _, mounted = drive_imu
        with pytest.raises(ValueError):
            heading_from_magnetometer(mounted.stream, np.eye(2))

    def test_smooth_heading_reduces_noise(self):
        t = np.arange(0.0, 10.0, 0.01)
        rng = np.random.default_rng(0)
        psi = 1.0 + 0.2 * rng.standard_normal(t.size)
        smoothed = smooth_heading(t, psi, window_s=1.0)
        assert np.std(smoothed) < np.std(psi) / 2

    def test_smooth_heading_handles_wraparound(self):
        t = np.arange(0.0, 10.0, 0.01)
        psi = np.full(t.size, np.pi - 0.01)
        psi[::2] = -np.pi + 0.01  # oscillates across the seam
        smoothed = smooth_heading(t, psi, window_s=0.5)
        # Mean direction is pi, not 0 (naive averaging would give ~0).
        assert np.all(np.abs(np.abs(smoothed) - np.pi) < 0.1)

    def test_smooth_validation(self):
        with pytest.raises(ValueError):
            smooth_heading(np.array([0.0, 1.0]), np.array([0.0, 1.0]), window_s=0.0)
        with pytest.raises(ValueError):
            smooth_heading(np.array([0.0]), np.array([0.0, 1.0]))
