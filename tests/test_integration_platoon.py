"""Platoon integration: three vehicles, pairwise RUPS consistency.

The RDF problem is pairwise, but a three-vehicle platoon provides a
strong cross-check with no ground-truth access at all: the pairwise
estimates must be mutually consistent, d(A,C) ~ d(A,B) + d(B,C).
"""

import numpy as np
import pytest

from repro.core import RupsConfig, RupsEngine
from repro.gsm.field import make_straight_field
from repro.gsm.scanner import RadioGroup
from repro.roads.types import RoadType
from repro.util.rng import RngFactory
from repro.vehicles.drive import simulate_drive
from repro.vehicles.idm import follow_leader
from repro.vehicles.kinematics import urban_speed_profile


@pytest.fixture(scope="module")
def platoon(small_plan):
    factory = RngFactory(314)
    lead = urban_speed_profile(
        duration_s=300.0,
        speed_limit_ms=12.0,
        rng=factory.generator("lead"),
        s0_m=80.0,
    )
    mid = follow_leader(lead, initial_gap_m=25.0)
    tail = follow_leader(mid, initial_gap_m=25.0)
    field = make_straight_field(
        lead.s_m[-1] + 30.0, RoadType.URBAN_4LANE, plan=small_plan, seed=314
    )
    group = RadioGroup(small_plan, n_radios=4)
    records = {
        name: simulate_drive(
            field, motion, group, seed=314, vehicle_key=name
        )
        for name, motion in (("lead", lead), ("mid", mid), ("tail", tail))
    }
    return records, {"lead": lead, "mid": mid, "tail": tail}


@pytest.fixture(scope="module")
def platoon_engine():
    return RupsEngine(RupsConfig(context_length_m=700.0, window_channels=30))


def _estimate(engine, records, own_name, other_name, tq):
    own = engine.build_trajectory(
        records[own_name].scan, records[own_name].estimated, at_time_s=tq
    )
    other = engine.build_trajectory(
        records[other_name].scan, records[other_name].estimated, at_time_s=tq
    )
    return engine.estimate_relative_distance(own, other)


class TestPlatoon:
    def test_pairwise_accuracy(self, platoon, platoon_engine):
        records, motions = platoon
        tq = 280.0
        for rear, front in (("mid", "lead"), ("tail", "mid"), ("tail", "lead")):
            est = _estimate(platoon_engine, records, rear, front, tq)
            assert est.resolved, (rear, front)
            truth = float(motions[front].arc_length_at(tq)) - float(
                motions[rear].arc_length_at(tq)
            )
            assert est.distance_m == pytest.approx(truth, abs=8.0)

    def test_transitivity(self, platoon, platoon_engine):
        records, _ = platoon
        errors = []
        for tq in (255.0, 270.0, 285.0):
            ab = _estimate(platoon_engine, records, "tail", "mid", tq)
            bc = _estimate(platoon_engine, records, "mid", "lead", tq)
            ac = _estimate(platoon_engine, records, "tail", "lead", tq)
            if ab.resolved and bc.resolved and ac.resolved:
                errors.append(abs(ac.distance_m - (ab.distance_m + bc.distance_m)))
        assert errors, "no fully resolved triple"
        assert np.mean(errors) < 6.0

    def test_antisymmetry(self, platoon, platoon_engine):
        records, _ = platoon
        tq = 275.0
        fwd = _estimate(platoon_engine, records, "tail", "lead", tq)
        rev = _estimate(platoon_engine, records, "lead", "tail", tq)
        assert fwd.resolved and rev.resolved
        assert fwd.distance_m == pytest.approx(-rev.distance_m, abs=5.0)

    def test_middle_vehicle_sees_both(self, platoon, platoon_engine):
        records, _ = platoon
        tq = 280.0
        ahead = _estimate(platoon_engine, records, "mid", "lead", tq)
        behind = _estimate(platoon_engine, records, "mid", "tail", tq)
        assert ahead.resolved and ahead.distance_m > 0
        assert behind.resolved and behind.distance_m < 0
