"""Tests for repro.gsm.validation: §III property self-check."""

import pytest

from repro.gsm.field import FieldConfig
from repro.gsm.validation import FieldValidationReport, validate_field_statistics


class TestValidateFieldStatistics:
    def test_default_config_is_paper_like(self):
        # Use the full evaluation plan: with very few channels the
        # power-vector correlation is legitimately less stable (the
        # paper's own observation 3), so the 39-channel test plan would
        # sit near the gate.
        from repro.gsm.band import EVAL_SUBSET_115

        report = validate_field_statistics(plan=EVAL_SUBSET_115, n_roads=4)
        assert report.stable
        assert report.unique
        assert report.fine_resolution
        assert report.paper_like

    def test_render_contains_verdicts(self, small_plan):
        report = validate_field_statistics(plan=small_plan, n_roads=3)
        text = report.render()
        assert "PASS" in text
        assert "stability" in text

    def test_broken_config_detected(self, small_plan):
        # Destroy temporal stability: violent drift swamps the spatial
        # structure between the two snapshots.
        from repro.roads.environment import ENVIRONMENT_PROFILES
        from dataclasses import replace as dc_replace

        # Huge measurement noise destroys resolution *and* stability.
        noisy = FieldConfig(noise_sigma_db=40.0)
        report = validate_field_statistics(
            config=noisy, plan=small_plan, n_roads=3
        )
        assert not report.paper_like

    def test_deterministic(self, small_plan):
        a = validate_field_statistics(plan=small_plan, n_roads=3, seed=4)
        b = validate_field_statistics(plan=small_plan, n_roads=3, seed=4)
        assert a == b

    def test_validation(self, small_plan):
        with pytest.raises(ValueError):
            validate_field_statistics(plan=small_plan, n_roads=1)

    def test_report_properties(self):
        good = FieldValidationReport(1.0, 0.5, 0.3)
        assert good.paper_like
        bad = FieldValidationReport(0.1, -0.2, 0.01)
        assert not bad.stable
        assert not bad.unique
        assert not bad.fine_resolution
        assert not bad.paper_like
