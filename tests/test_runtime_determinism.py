"""Determinism suite: parallel runs must equal serial runs byte for byte.

The runtime's whole claim is that ``jobs`` is a throughput knob, never a
results knob.  Campaign results are compared with ``pickle.dumps`` —
any drifting float, reordered bucket, or changed dict insertion order
fails — and the experiment-level fan-out is compared through rendered
artifacts.
"""

import pickle

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.registry import run_experiment, run_experiments

SMALL_CAMPAIGN = dict(
    route_length_m=6000.0, n_drives=2, queries_per_drive=3, seed=7
)


class TestCampaignJobsDeterminism:
    def test_parallel_campaign_byte_identical_to_serial(self, small_plan):
        serial = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        parallel = run_campaign(plan=small_plan, jobs=4, **SMALL_CAMPAIGN)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_all_cores_byte_identical_to_serial(self, small_plan):
        serial = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        all_cores = run_campaign(plan=small_plan, jobs=None, **SMALL_CAMPAIGN)
        assert pickle.dumps(serial) == pickle.dumps(all_cores)

    @pytest.mark.slow
    def test_golden_config_campaign_jobs_invariant(self):
        """The golden campaign itself under jobs=2 vs jobs=1.

        Together with ``test_goldens_campaign`` (which pins the jobs=1
        numbers against ``tests/goldens/campaign_small.json``), this
        extends the golden to every ``jobs`` setting.
        """
        import numpy as np

        from repro.gsm.band import RGSM900
        from tests.test_goldens_campaign import CAMPAIGN_KWARGS, PLAN_STRIDE

        plan = RGSM900.subset(
            np.arange(0, RGSM900.n_channels, PLAN_STRIDE), name="golden-small"
        )
        serial = run_campaign(plan=plan, jobs=1, **CAMPAIGN_KWARGS)
        parallel = run_campaign(plan=plan, jobs=2, **CAMPAIGN_KWARGS)
        assert pickle.dumps(serial) == pickle.dumps(parallel)


class TestExperimentFanOut:
    def test_run_experiments_matches_run_experiment(self):
        inline = run_experiment("fig1", seed=2)
        (pair,) = run_experiments(["fig1"], jobs=1, kwargs_by_id={"fig1": {"seed": 2}})
        assert pair[0] == "fig1"
        assert pair[1].render() == inline.render()

    def test_parallel_fan_out_matches_serial(self):
        ids = ["fig1", "fig3"]
        kwargs = {e: {"seed": 2} for e in ids}
        serial = run_experiments(ids, jobs=1, kwargs_by_id=kwargs)
        parallel = run_experiments(ids, jobs=2, kwargs_by_id=kwargs)
        assert [e for e, _ in serial] == [e for e, _ in parallel] == ids
        for (_, a), (_, b) in zip(serial, parallel):
            assert a.render() == b.render()

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="fig99"):
            run_experiments(["fig1", "fig99"])
