"""Determinism suite: parallel runs must equal serial runs byte for byte.

The runtime's whole claim is that ``jobs`` is a throughput knob, never a
results knob.  Campaign results are compared with ``pickle.dumps`` —
any drifting float, reordered bucket, or changed dict insertion order
fails — and the experiment-level fan-out is compared through rendered
artifacts.
"""

import io
import pickle

import pytest

from repro import obs
from repro.core.config import RupsConfig
from repro.experiments.campaign import run_campaign
from repro.experiments.fleet import fleet_replay
from repro.experiments.registry import run_experiment, run_experiments
from repro.obs import MetricsRegistry, invariant_snapshot, use_registry
from repro.obs.events import EventLedger, use_ledger
from repro.runtime import DeterministicExecutor

SMALL_CAMPAIGN = dict(
    route_length_m=6000.0, n_drives=2, queries_per_drive=3, seed=7
)

#: Small but genuinely pooled fleet replay: with ``chunk_pairs=2`` a
#: tick's searches split into several chunks, so ``jobs > 1`` really
#: crosses process boundaries (one-chunk waves run inline by design).
SMALL_FLEET = dict(
    n_vehicles=4,
    duration_s=90.0,
    update_period_s=1.0,
    query_rate_hz=2.0,
    seed=5,
    chunk_pairs=2,
)
FLEET_CONFIG = RupsConfig(context_length_m=500.0, window_channels=20)


def _metrics_task(item: int) -> int:
    """Pure task with deterministic metrics writes (module level: pickles)."""
    obs.inc("task.runs")
    obs.inc("task.total", item)
    obs.set_gauge("task.last", float(item))
    obs.observe("task.value", float(item), buckets=(2.0, 5.0, 8.0))
    return item * 2


class TestCampaignJobsDeterminism:
    def test_parallel_campaign_byte_identical_to_serial(self, small_plan):
        serial = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        parallel = run_campaign(plan=small_plan, jobs=4, **SMALL_CAMPAIGN)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_all_cores_byte_identical_to_serial(self, small_plan):
        serial = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        all_cores = run_campaign(plan=small_plan, jobs=None, **SMALL_CAMPAIGN)
        assert pickle.dumps(serial) == pickle.dumps(all_cores)

    @pytest.mark.slow
    def test_golden_config_campaign_jobs_invariant(self):
        """The golden campaign itself under jobs=2 vs jobs=1.

        Together with ``test_goldens_campaign`` (which pins the jobs=1
        numbers against ``tests/goldens/campaign_small.json``), this
        extends the golden to every ``jobs`` setting.
        """
        import numpy as np

        from repro.gsm.band import RGSM900
        from tests.test_goldens_campaign import CAMPAIGN_KWARGS, PLAN_STRIDE

        plan = RGSM900.subset(
            np.arange(0, RGSM900.n_channels, PLAN_STRIDE), name="golden-small"
        )
        serial = run_campaign(plan=plan, jobs=1, **CAMPAIGN_KWARGS)
        parallel = run_campaign(plan=plan, jobs=2, **CAMPAIGN_KWARGS)
        assert pickle.dumps(serial) == pickle.dumps(parallel)


class TestMetricsMergeDeterminism:
    """repro.obs merge semantics: jobs is never a metrics knob either."""

    @staticmethod
    def _snapshot_for(jobs):
        registry = MetricsRegistry()
        with use_registry(registry):
            with DeterministicExecutor(jobs=jobs) as executor:
                results = executor.map_ordered(_metrics_task, range(10))
        assert results == [2 * i for i in range(10)]
        return registry.snapshot()

    @pytest.mark.parametrize("jobs", [2, 4, None])
    def test_merged_metrics_byte_identical_across_jobs(self, jobs):
        serial = self._snapshot_for(1)
        parallel = self._snapshot_for(jobs)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_merged_values(self):
        snap = self._snapshot_for(1)
        assert snap["counters"] == {"task.runs": 10, "task.total": 45}
        assert snap["gauges"] == {"task.last": 9.0}  # last submitted task
        hist = snap["histograms"]["task.value"]
        assert hist["counts"] == [3, 3, 3, 1]
        assert hist["count"] == 10
        assert hist["sum"] == 45.0

    def test_campaign_pipeline_counters_jobs_invariant(self, small_plan):
        """Pipeline-level counters must not depend on chunk layout.

        Engine-cache hit/miss counters legitimately vary with ``jobs``
        (each worker chunk builds its own engine, so the cache sees a
        different request stream); the SYN-search and campaign counters
        count per-query work and must be identical.
        """

        def counters_for(jobs):
            registry = MetricsRegistry()
            with use_registry(registry):
                run_campaign(plan=small_plan, jobs=jobs, **SMALL_CAMPAIGN)
            counters = registry.snapshot()["counters"]
            # campaign.chunks is scheduling granularity by design
            # (fixed-size query chunks); everything else counted here
            # is per-query work and must be layout-free.
            return {
                k: v
                for k, v in sorted(counters.items())
                if k.startswith(("syn.", "campaign.", "engine.estimates"))
                and k != "campaign.chunks"
            }

        serial = counters_for(1)
        parallel = counters_for(4)
        assert serial["campaign.queries"] == 6
        assert serial["syn.searches"] == 6
        assert serial == parallel


class TestSharedStaticsDeterminism:
    """Shared-statics caches are a transport detail, never a results knob.

    The pooled campaign ships content-hash refs instead of heavy
    pickles; the store must be invisible in the results: every
    (jobs, shared_statics, chunk_queries) combination is pickle-identical
    to the plain serial run, and the exported event ledger is
    byte-identical too.
    """

    @pytest.mark.parametrize(
        "jobs,shared_statics",
        [(1, True), (2, True), (4, True), (None, True), (4, False)],
    )
    def test_shared_statics_byte_identical(self, small_plan, jobs, shared_statics):
        base = run_campaign(
            plan=small_plan, jobs=1, shared_statics=False, **SMALL_CAMPAIGN
        )
        other = run_campaign(
            plan=small_plan,
            jobs=jobs,
            shared_statics=shared_statics,
            **SMALL_CAMPAIGN,
        )
        assert pickle.dumps(base) == pickle.dumps(other)

    @pytest.mark.parametrize("chunk_queries", [1, 2, 5])
    def test_chunk_layout_invariant(self, small_plan, chunk_queries):
        """Cross-pair batching must not leak batch composition into floats."""
        base = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        chunked = run_campaign(
            plan=small_plan,
            jobs=2,
            chunk_queries=chunk_queries,
            **SMALL_CAMPAIGN,
        )
        assert pickle.dumps(base) == pickle.dumps(chunked)

    def test_warm_executor_reuse_byte_identical(self, small_plan):
        """A warm pool with resident caches replays the exact same run."""
        base = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        with DeterministicExecutor(jobs=2) as executor:
            executor.warm_up()
            cold = run_campaign(
                plan=small_plan, executor=executor, **SMALL_CAMPAIGN
            )
            warm = run_campaign(
                plan=small_plan, executor=executor, **SMALL_CAMPAIGN
            )
        assert pickle.dumps(base) == pickle.dumps(cold)
        assert pickle.dumps(cold) == pickle.dumps(warm)

    def test_event_export_shared_statics_invariant(self, small_plan):
        """The provenance ledger must not see the transport either."""

        def jsonl_for(shared_statics):
            ledger = EventLedger()
            with use_ledger(ledger):
                run_campaign(
                    plan=small_plan,
                    jobs=2,
                    shared_statics=shared_statics,
                    **SMALL_CAMPAIGN,
                )
            buffer = io.StringIO()
            ledger.write_jsonl(buffer)
            return buffer.getvalue()

        on = jsonl_for(True)
        off = jsonl_for(False)
        assert on and on == off


class TestFleetJobsDeterminism:
    """The fleet service inherits the runtime's whole contract.

    With a fixed seed the replay's answered queries, the merged
    *invariant* metrics view, and the exported provenance events must be
    byte-identical under any ``jobs``/``shared_statics`` setting; only
    the wall-clock latency figures (kept in the service's local
    registry, not compared here) may move.
    """

    @staticmethod
    def _run(small_plan, **kwargs):
        registry = MetricsRegistry()
        ledger = EventLedger()
        with use_registry(registry), use_ledger(ledger):
            result = fleet_replay(
                plan=small_plan, config=FLEET_CONFIG, **SMALL_FLEET, **kwargs
            )
        buffer = io.StringIO()
        ledger.write_jsonl(buffer)
        return (
            pickle.dumps(result.outcomes),
            pickle.dumps(invariant_snapshot(registry.snapshot())),
            buffer.getvalue(),
        )

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_replay_byte_identical_to_serial(self, small_plan, jobs):
        serial = self._run(small_plan, jobs=1)
        assert serial[0] and serial[2]  # queries answered, events exported
        parallel = self._run(small_plan, jobs=jobs)
        assert parallel == serial

    def test_shared_statics_off_byte_identical(self, small_plan):
        serial = self._run(small_plan, jobs=1)
        payloads = self._run(small_plan, jobs=2, shared_statics=False)
        assert payloads == serial

    def test_chunk_layout_never_changes_answers(self, small_plan):
        """Batch composition moves per-batch event order, never a result."""
        kwargs = dict(SMALL_FLEET)
        kwargs.pop("chunk_pairs")
        base = fleet_replay(
            plan=small_plan, config=FLEET_CONFIG, chunk_pairs=2, **kwargs
        )
        other = fleet_replay(
            plan=small_plan,
            config=FLEET_CONFIG,
            chunk_pairs=8,
            jobs=2,
            **kwargs,
        )
        assert base.outcomes == other.outcomes
        assert base.n_queries > 0


class TestExperimentFanOut:
    def test_run_experiments_matches_run_experiment(self):
        inline = run_experiment("fig1", seed=2)
        (pair,) = run_experiments(["fig1"], jobs=1, kwargs_by_id={"fig1": {"seed": 2}})
        assert pair[0] == "fig1"
        assert pair[1].render() == inline.render()

    def test_parallel_fan_out_matches_serial(self):
        ids = ["fig1", "fig3"]
        kwargs = {e: {"seed": 2} for e in ids}
        serial = run_experiments(ids, jobs=1, kwargs_by_id=kwargs)
        parallel = run_experiments(ids, jobs=2, kwargs_by_id=kwargs)
        assert [e for e, _ in serial] == [e for e, _ in parallel] == ids
        for (_, a), (_, b) in zip(serial, parallel):
            assert a.render() == b.render()

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="fig99"):
            run_experiments(["fig1", "fig99"])
