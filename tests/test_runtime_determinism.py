"""Determinism suite: parallel runs must equal serial runs byte for byte.

The runtime's whole claim is that ``jobs`` is a throughput knob, never a
results knob.  Campaign results are compared with ``pickle.dumps`` —
any drifting float, reordered bucket, or changed dict insertion order
fails — and the experiment-level fan-out is compared through rendered
artifacts.
"""

import io
import json
import os
import pickle
import tempfile

import pytest

from repro import obs
from repro.core.config import RupsConfig
from repro.experiments.campaign import run_campaign
from repro.experiments.fleet import fleet_replay
from repro.experiments.registry import run_experiment, run_experiments
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    SpanRecorder,
    invariant_snapshot,
    trace,
    use_recorder,
    use_registry,
)
from repro.obs.events import EventLedger, use_ledger
from repro.obs.openmetrics import parse, render
from repro.runtime import DeterministicExecutor

SMALL_CAMPAIGN = dict(
    route_length_m=6000.0, n_drives=2, queries_per_drive=3, seed=7
)

#: Small but genuinely pooled fleet replay: with ``chunk_pairs=2`` a
#: tick's searches split into several chunks, so ``jobs > 1`` really
#: crosses process boundaries (one-chunk waves run inline by design).
SMALL_FLEET = dict(
    n_vehicles=4,
    duration_s=90.0,
    update_period_s=1.0,
    query_rate_hz=2.0,
    seed=5,
    chunk_pairs=2,
)
FLEET_CONFIG = RupsConfig(context_length_m=500.0, window_channels=20)


def _metrics_task(item: int) -> int:
    """Pure task with deterministic metrics writes (module level: pickles)."""
    obs.inc("task.runs")
    obs.inc("task.total", item)
    obs.set_gauge("task.last", float(item))
    obs.observe("task.value", float(item), buckets=(2.0, 5.0, 8.0))
    return item * 2


def _traced_task(item: int) -> int:
    """Task opening spans, so worker-side traces cross the pool boundary."""
    with trace("task.stage", attrs=(("item", item),)):
        with trace("task.inner"):
            pass
    return item


class TestCampaignJobsDeterminism:
    def test_parallel_campaign_byte_identical_to_serial(self, small_plan):
        serial = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        parallel = run_campaign(plan=small_plan, jobs=4, **SMALL_CAMPAIGN)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_all_cores_byte_identical_to_serial(self, small_plan):
        serial = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        all_cores = run_campaign(plan=small_plan, jobs=None, **SMALL_CAMPAIGN)
        assert pickle.dumps(serial) == pickle.dumps(all_cores)

    @pytest.mark.slow
    def test_golden_config_campaign_jobs_invariant(self):
        """The golden campaign itself under jobs=2 vs jobs=1.

        Together with ``test_goldens_campaign`` (which pins the jobs=1
        numbers against ``tests/goldens/campaign_small.json``), this
        extends the golden to every ``jobs`` setting.
        """
        import numpy as np

        from repro.gsm.band import RGSM900
        from tests.test_goldens_campaign import CAMPAIGN_KWARGS, PLAN_STRIDE

        plan = RGSM900.subset(
            np.arange(0, RGSM900.n_channels, PLAN_STRIDE), name="golden-small"
        )
        serial = run_campaign(plan=plan, jobs=1, **CAMPAIGN_KWARGS)
        parallel = run_campaign(plan=plan, jobs=2, **CAMPAIGN_KWARGS)
        assert pickle.dumps(serial) == pickle.dumps(parallel)


class TestMetricsMergeDeterminism:
    """repro.obs merge semantics: jobs is never a metrics knob either."""

    @staticmethod
    def _snapshot_for(jobs):
        registry = MetricsRegistry()
        with use_registry(registry):
            with DeterministicExecutor(jobs=jobs) as executor:
                results = executor.map_ordered(_metrics_task, range(10))
        assert results == [2 * i for i in range(10)]
        return registry.snapshot()

    @pytest.mark.parametrize("jobs", [2, 4, None])
    def test_merged_metrics_byte_identical_across_jobs(self, jobs):
        serial = self._snapshot_for(1)
        parallel = self._snapshot_for(jobs)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_merged_values(self):
        snap = self._snapshot_for(1)
        assert snap["counters"] == {"task.runs": 10, "task.total": 45}
        assert snap["gauges"] == {"task.last": 9.0}  # last submitted task
        hist = snap["histograms"]["task.value"]
        assert hist["counts"] == [3, 3, 3, 1]
        assert hist["count"] == 10
        assert hist["sum"] == 45.0

    def test_campaign_pipeline_counters_jobs_invariant(self, small_plan):
        """Pipeline-level counters must not depend on chunk layout.

        Engine-cache hit/miss counters legitimately vary with ``jobs``
        (each worker chunk builds its own engine, so the cache sees a
        different request stream); the SYN-search and campaign counters
        count per-query work and must be identical.
        """

        def counters_for(jobs):
            registry = MetricsRegistry()
            with use_registry(registry):
                run_campaign(plan=small_plan, jobs=jobs, **SMALL_CAMPAIGN)
            counters = registry.snapshot()["counters"]
            # campaign.chunks is scheduling granularity by design
            # (fixed-size query chunks); everything else counted here
            # is per-query work and must be layout-free.
            return {
                k: v
                for k, v in sorted(counters.items())
                if k.startswith(("syn.", "campaign.", "engine.estimates"))
                and k != "campaign.chunks"
            }

        serial = counters_for(1)
        parallel = counters_for(4)
        assert serial["campaign.queries"] == 6
        assert serial["syn.searches"] == 6
        assert serial == parallel

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_invariant_snapshot_placement_filter_across_jobs(
        self, small_plan, jobs
    ):
        """Placement series are stripped by default, included on request.

        Under any ``jobs`` the raw snapshot holds ``engine.cache.*``
        (and, pooled, ``runtime.shared.*``) counters plus ``span.*``
        wall-clock histograms; the invariant view must drop all of them
        while an explicit empty exclusion list keeps the full picture.
        """
        registry = MetricsRegistry()
        with use_registry(registry), use_recorder(SpanRecorder(capacity=4096)):
            run_campaign(plan=small_plan, jobs=jobs, **SMALL_CAMPAIGN)
        snap = registry.snapshot()
        assert any(k.startswith("engine.cache.") for k in snap["counters"])
        if jobs > 1:
            assert any(
                k.startswith("runtime.shared.") for k in snap["counters"]
            )
        assert any(k.startswith("span.") for k in snap["histograms"])
        view = invariant_snapshot(snap)
        assert not any(
            k.startswith(("engine.cache.", "runtime.shared."))
            for k in view["counters"]
        )
        assert not any(k.startswith("span.") for k in view["histograms"])
        full = invariant_snapshot(
            snap, exclude_histogram_prefixes=(), exclude_counter_prefixes=()
        )
        assert set(full["counters"]) == set(snap["counters"])
        assert set(full["histograms"]) == set(snap["histograms"])


class TestTraceStitchingDeterminism:
    """The merged trace tree is as jobs-invariant as the results.

    Each pooled task records spans under a fresh recorder whose context
    is its submission path; the executor adopts the snapshots back in
    submission order, so the structural view — names, deterministic IDs,
    parent links, order — must be byte-identical for any ``jobs``.
    """

    @staticmethod
    def _structural_for(jobs):
        registry = MetricsRegistry()
        recorder = SpanRecorder(context=("root",))
        with use_registry(registry), use_recorder(recorder):
            with DeterministicExecutor(jobs=jobs) as executor:
                with trace("wave"):
                    results = executor.map_ordered(_traced_task, range(8))
        assert results == list(range(8))
        return recorder, registry

    @pytest.mark.parametrize("jobs", [2, 4, None])
    def test_structural_tree_byte_identical_across_jobs(self, jobs):
        serial, _ = self._structural_for(1)
        parallel, _ = self._structural_for(jobs)
        serial_view = json.dumps(serial.structural(), sort_keys=True)
        parallel_view = json.dumps(parallel.structural(), sort_keys=True)
        assert serial_view == parallel_view

    def test_task_spans_stitched_under_wave_span(self):
        recorder, registry = self._structural_for(2)
        spans = recorder.structural()["spans"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (wave,) = by_name["wave"]
        # Task-root spans hang off the span that wrapped the executor
        # wave; nested task spans keep their in-task structure.
        assert len(by_name["task.stage"]) == 8
        for stage in by_name["task.stage"]:
            assert stage["parent"] == "wave"
            assert stage["parent_id"] == wave["span_id"]
            assert stage["trace_id"] == recorder.trace_id
            assert stage["depth"] == 1
        for inner in by_name["task.inner"]:
            assert inner["parent"] == "task.stage"
            assert inner["depth"] == 2
        # Distinct submission paths give distinct span IDs.
        ids = [s["span_id"] for s in spans]
        assert len(set(ids)) == len(ids)
        # Items land in submission order (attrs are structural).
        items = [s["attrs"]["item"] for s in by_name["task.stage"]]
        assert items == list(range(8))
        # Worker span durations reach the merged registry exactly once.
        hist = registry.snapshot()["histograms"]["span.task.stage"]
        assert hist["count"] == 8


class TestSharedStaticsDeterminism:
    """Shared-statics caches are a transport detail, never a results knob.

    The pooled campaign ships content-hash refs instead of heavy
    pickles; the store must be invisible in the results: every
    (jobs, shared_statics, chunk_queries) combination is pickle-identical
    to the plain serial run, and the exported event ledger is
    byte-identical too.
    """

    @pytest.mark.parametrize(
        "jobs,shared_statics",
        [(1, True), (2, True), (4, True), (None, True), (4, False)],
    )
    def test_shared_statics_byte_identical(self, small_plan, jobs, shared_statics):
        base = run_campaign(
            plan=small_plan, jobs=1, shared_statics=False, **SMALL_CAMPAIGN
        )
        other = run_campaign(
            plan=small_plan,
            jobs=jobs,
            shared_statics=shared_statics,
            **SMALL_CAMPAIGN,
        )
        assert pickle.dumps(base) == pickle.dumps(other)

    @pytest.mark.parametrize("chunk_queries", [1, 2, 5])
    def test_chunk_layout_invariant(self, small_plan, chunk_queries):
        """Cross-pair batching must not leak batch composition into floats."""
        base = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        chunked = run_campaign(
            plan=small_plan,
            jobs=2,
            chunk_queries=chunk_queries,
            **SMALL_CAMPAIGN,
        )
        assert pickle.dumps(base) == pickle.dumps(chunked)

    def test_warm_executor_reuse_byte_identical(self, small_plan):
        """A warm pool with resident caches replays the exact same run."""
        base = run_campaign(plan=small_plan, jobs=1, **SMALL_CAMPAIGN)
        with DeterministicExecutor(jobs=2) as executor:
            executor.warm_up()
            cold = run_campaign(
                plan=small_plan, executor=executor, **SMALL_CAMPAIGN
            )
            warm = run_campaign(
                plan=small_plan, executor=executor, **SMALL_CAMPAIGN
            )
        assert pickle.dumps(base) == pickle.dumps(cold)
        assert pickle.dumps(cold) == pickle.dumps(warm)

    def test_event_export_shared_statics_invariant(self, small_plan):
        """The provenance ledger must not see the transport either."""

        def jsonl_for(shared_statics):
            ledger = EventLedger()
            with use_ledger(ledger):
                run_campaign(
                    plan=small_plan,
                    jobs=2,
                    shared_statics=shared_statics,
                    **SMALL_CAMPAIGN,
                )
            buffer = io.StringIO()
            ledger.write_jsonl(buffer)
            return buffer.getvalue()

        on = jsonl_for(True)
        off = jsonl_for(False)
        assert on and on == off


class TestFleetJobsDeterminism:
    """The fleet service inherits the runtime's whole contract.

    With a fixed seed the replay's answered queries, the merged
    *invariant* metrics view, the exported provenance events, the
    structural trace tree, its OpenMetrics exposition, and a
    flight-recorder dump must all be byte-identical under any
    ``jobs``/``shared_statics`` setting; only the wall-clock latency
    figures (kept in the service's local registry, not compared here)
    may move.
    """

    @staticmethod
    def _run(small_plan, **kwargs):
        registry = MetricsRegistry()
        ledger = EventLedger()
        recorder = SpanRecorder(capacity=8192)
        with use_registry(registry), use_ledger(ledger), use_recorder(
            recorder
        ):
            result = fleet_replay(
                plan=small_plan, config=FLEET_CONFIG, **SMALL_FLEET, **kwargs
            )
            with tempfile.TemporaryDirectory() as tmp:
                flight_path = os.path.join(tmp, "flight.jsonl")
                with FlightRecorder(
                    flight_path, span_tail=8192, lock_drop_threshold=None
                ) as flight:
                    flight.dump("end_of_run")
                with open(flight_path, "rb") as fh:
                    flight_bytes = fh.read()
        # Ring eviction would make the retained tail depend on how many
        # placement spans each layout recorded — keep the ring larger
        # than the replay so the comparison is over the full trace.
        assert recorder.dropped == 0
        buffer = io.StringIO()
        ledger.write_jsonl(buffer)
        return (
            pickle.dumps(result.outcomes),
            pickle.dumps(invariant_snapshot(registry.snapshot())),
            buffer.getvalue(),
            json.dumps(recorder.structural(), sort_keys=True),
            render(invariant_snapshot(registry.snapshot())),
            flight_bytes,
        )

    @pytest.mark.parametrize("jobs", [2, 4, None])
    def test_parallel_replay_byte_identical_to_serial(self, small_plan, jobs):
        serial = self._run(small_plan, jobs=1)
        assert serial[0] and serial[2]  # queries answered, events exported
        assert json.loads(serial[3])["spans"]  # trace tree populated
        assert parse(serial[4])  # exposition is valid OpenMetrics
        assert serial[5]  # flight dump written
        parallel = self._run(small_plan, jobs=jobs)
        assert parallel == serial

    def test_exported_event_walks_back_to_chunk_span(self, small_plan):
        """One seeded query: exported event → query span → chunk span.

        The differential join the observability plane promises: an
        exported event carries its query's deterministic span ID; that
        span's links name the exact worker chunk (and tick phases) that
        produced the estimate.
        """
        from repro.obs.tracing import query_span_id

        registry = MetricsRegistry()
        ledger = EventLedger()
        recorder = SpanRecorder(capacity=8192)
        with use_registry(registry), use_ledger(ledger), use_recorder(
            recorder
        ):
            fleet_replay(
                plan=small_plan, config=FLEET_CONFIG, **SMALL_FLEET, jobs=2
            )
        spans = {
            s["span_id"]: s for s in recorder.structural()["spans"]
        }
        walked = 0
        for event in ledger.to_dicts():
            if event["query_id"] is None:
                continue
            # Every per-query event's exemplar is the deterministic
            # query-span ID — computable from the query id alone.
            assert event["span_id"] == query_span_id(event["query_id"])
            query_span = spans.get(event["span_id"])
            if query_span is None:
                continue  # query submitted but not answered by replay end
            assert query_span["name"] == "fleet.query"
            assert query_span["attrs"]["query_id"] == event["query_id"]
            linked = [spans[sid] for sid in query_span["links"]]
            linked_names = {s["name"] for s in linked}
            assert "fleet.plan" in linked_names
            chunks = [s for s in linked if s["name"] == "fleet.search_chunk"]
            if not chunks:
                continue  # answered without a search (e.g. rejected)
            for chunk in chunks:
                assert chunk["attrs"]["pairs"] >= 1
                assert chunk["trace_id"] == recorder.trace_id
            walked += 1
        # The join must actually fire for a healthy replay, not
        # vacuously pass over an empty ledger.
        assert walked > 0

    def test_shared_statics_off_byte_identical(self, small_plan):
        serial = self._run(small_plan, jobs=1)
        payloads = self._run(small_plan, jobs=2, shared_statics=False)
        assert payloads == serial

    def test_chunk_layout_never_changes_answers(self, small_plan):
        """Batch composition moves per-batch event order, never a result."""
        kwargs = dict(SMALL_FLEET)
        kwargs.pop("chunk_pairs")
        base = fleet_replay(
            plan=small_plan, config=FLEET_CONFIG, chunk_pairs=2, **kwargs
        )
        other = fleet_replay(
            plan=small_plan,
            config=FLEET_CONFIG,
            chunk_pairs=8,
            jobs=2,
            **kwargs,
        )
        assert base.outcomes == other.outcomes
        assert base.n_queries > 0


class TestExperimentFanOut:
    def test_run_experiments_matches_run_experiment(self):
        inline = run_experiment("fig1", seed=2)
        (pair,) = run_experiments(["fig1"], jobs=1, kwargs_by_id={"fig1": {"seed": 2}})
        assert pair[0] == "fig1"
        assert pair[1].render() == inline.render()

    def test_parallel_fan_out_matches_serial(self):
        ids = ["fig1", "fig3"]
        kwargs = {e: {"seed": 2} for e in ids}
        serial = run_experiments(ids, jobs=1, kwargs_by_id=kwargs)
        parallel = run_experiments(ids, jobs=2, kwargs_by_id=kwargs)
        assert [e for e, _ in serial] == [e for e, _ in parallel] == ids
        for (_, a), (_, b) in zip(serial, parallel):
            assert a.render() == b.render()

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="fig99"):
            run_experiments(["fig1", "fig99"])
