"""Tests for repro.v2v.wsm and repro.v2v.channel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.v2v.channel import DsrcChannel
from repro.v2v.wsm import (
    WSM_HEADER_BYTES,
    WSM_MAX_PAYLOAD_BYTES,
    WsmPacket,
    fragment_payload,
    reassemble,
)


class TestFragmentation:
    def test_paper_packet_count(self):
        # SV-B: "about 182KB data, which requires 130 WSM packets"
        data = b"\x00" * (182 * 1024)
        packets = fragment_payload(data)
        assert len(packets) == pytest.approx(134, abs=5)

    def test_single_packet_small_payload(self):
        packets = fragment_payload(b"hello")
        assert len(packets) == 1
        assert packets[0].count == 1

    def test_empty_payload(self):
        packets = fragment_payload(b"")
        assert len(packets) == 1

    def test_fragment_sizes(self):
        data = bytes(range(256)) * 20
        packets = fragment_payload(data)
        cap = WSM_MAX_PAYLOAD_BYTES - WSM_HEADER_BYTES
        for p in packets[:-1]:
            assert len(p.payload) == cap
        assert p.wire_bytes <= WSM_MAX_PAYLOAD_BYTES

    @given(st.binary(min_size=0, max_size=20_000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, data):
        packets = fragment_payload(data, message_id=3)
        assert reassemble(packets) == data

    def test_reassemble_detects_missing(self):
        packets = fragment_payload(b"\x01" * 5000)
        with pytest.raises(ValueError, match="missing"):
            reassemble(packets[:-1])

    def test_reassemble_detects_mixed_ids(self):
        a = fragment_payload(b"\x01" * 3000, message_id=1)
        b = fragment_payload(b"\x01" * 3000, message_id=2)
        with pytest.raises(ValueError, match="mixed"):
            reassemble([a[0], b[1]])

    def test_reassemble_detects_duplicates(self):
        packets = fragment_payload(b"\x01" * 3000)
        with pytest.raises(ValueError, match="duplicate"):
            reassemble(packets + [packets[0]])

    def test_packet_validation(self):
        with pytest.raises(ValueError):
            WsmPacket(message_id=0, index=2, count=2, payload=b"")
        with pytest.raises(ValueError):
            WsmPacket(message_id=0, index=0, count=1, payload=b"\x00" * 2000)


class TestDsrcChannel:
    def test_nominal_time_matches_paper(self):
        # 182 KB at 4 ms RTT stop-and-wait: ~0.52-0.54 s
        ch = DsrcChannel()
        t = ch.nominal_transfer_time_s(182 * 1024)
        assert t == pytest.approx(0.53, abs=0.03)

    def test_transfer_reports_all_packets(self):
        ch = DsrcChannel(loss_prob=0.0, rtt_jitter_s=0.0)
        result = ch.transfer_bytes(b"\x00" * 50_000, rng=0)
        assert result.delivered
        assert result.retransmissions == 0
        assert result.time_s == pytest.approx(
            ch.nominal_transfer_time_s(50_000), rel=0.01
        )

    def test_loss_causes_retransmissions(self):
        ch = DsrcChannel(loss_prob=0.3)
        result = ch.transfer_bytes(b"\x00" * 100_000, rng=1)
        assert result.retransmissions > 0
        assert result.time_s > ch.nominal_transfer_time_s(100_000)

    def test_contention_inflates_rtt(self):
        quiet = DsrcChannel(n_contenders=0)
        busy = DsrcChannel(n_contenders=10)
        assert busy.effective_rtt_s > quiet.effective_rtt_s

    def test_empty_transfer(self):
        result = DsrcChannel().transfer_packets([], rng=0)
        assert result.delivered and result.time_s == 0.0

    def test_deterministic_given_seed(self):
        ch = DsrcChannel(loss_prob=0.1)
        a = ch.transfer_bytes(b"\x00" * 20_000, rng=5)
        b = ch.transfer_bytes(b"\x00" * 20_000, rng=5)
        assert a.time_s == b.time_s
        assert a.packets_sent == b.packets_sent

    def test_validation(self):
        with pytest.raises(ValueError):
            DsrcChannel(rtt_mean_s=0.0)
        with pytest.raises(ValueError):
            DsrcChannel(loss_prob=1.0)
        with pytest.raises(ValueError):
            DsrcChannel(max_retries=-1)
        with pytest.raises(ValueError):
            DsrcChannel().nominal_transfer_time_s(-1)


class TestDeliveryModel:
    """The vectorised loss model must match its closed form.

    Regression for two delivery-model bugs: (a) the delivered flag was
    computed from retry counts *after* capping at the budget, which made
    it tautologically true; (b) an unrelated re-roll decided delivery
    instead of the geometric attempt draw, biasing the delivery rate.
    """

    @pytest.mark.parametrize(
        "loss_prob,n_fragments,max_retries,seed",
        [
            (0.3, 5, 1, 101),
            (0.5, 3, 0, 202),
            (0.1, 10, 2, 303),
        ],
    )
    def test_delivery_rate_matches_closed_form(
        self, loss_prob, n_fragments, max_retries, seed
    ):
        from scipy.stats import binom

        ch = DsrcChannel(loss_prob=loss_prob, max_retries=max_retries)
        chunk = WSM_MAX_PAYLOAD_BYTES - WSM_HEADER_BYTES
        packets = fragment_payload(b"\x00" * (chunk * n_fragments))
        assert len(packets) == n_fragments

        n_trials = 2000
        gen = np.random.default_rng(seed)
        delivered = sum(
            ch.transfer_packets(packets, rng=gen).delivered
            for _ in range(n_trials)
        )
        p = (1.0 - loss_prob ** (max_retries + 1)) ** n_fragments
        lo = binom.ppf(0.005, n_trials, p)
        hi = binom.ppf(0.995, n_trials, p)
        assert lo <= delivered <= hi, (
            f"delivered {delivered}/{n_trials} outside 99% CI "
            f"[{lo}, {hi}] for closed form p={p:.4f}"
        )

    def test_delivered_flag_not_tautological(self):
        # At 90% loss with no retries, most multi-fragment transfers
        # must fail — the old capped-attempts check said all succeeded.
        ch = DsrcChannel(loss_prob=0.9, max_retries=0)
        packets = fragment_payload(b"\x00" * 20_000)
        results = [ch.transfer_packets(packets, rng=s) for s in range(50)]
        assert any(not r.delivered for r in results)
        for r in results:
            assert r.delivered == all(r.fragment_arrived)
            assert len(r.arrivals) == sum(r.fragment_arrived)

    def test_bytes_on_air_counts_retransmissions(self):
        # Regression: retransmissions used to add zero bytes.  With
        # equal-size fragments every attempt costs the same wire bytes,
        # so the total is exactly attempts x wire size.
        chunk = WSM_MAX_PAYLOAD_BYTES - WSM_HEADER_BYTES
        packets = fragment_payload(b"\x00" * (chunk * 8))
        ch = DsrcChannel(loss_prob=0.4, max_retries=8)
        result = ch.transfer_packets(packets, rng=3)
        assert result.retransmissions > 0
        assert result.bytes_on_air == result.packets_sent * packets[0].wire_bytes
        assert result.bytes_on_air > sum(p.wire_bytes for p in packets)

    def test_sequential_path_matches_closed_form(self):
        # The attempt-by-attempt simulator (used for faults / bursty
        # loss) must agree with the same closed form when driven with
        # i.i.d. loss via a trivial fault plan.
        from scipy.stats import binom

        from repro.v2v.faults import FaultPlan

        loss_prob, max_retries, n_fragments = 0.3, 1, 4
        ch = DsrcChannel(loss_prob=loss_prob, max_retries=max_retries)
        chunk = WSM_MAX_PAYLOAD_BYTES - WSM_HEADER_BYTES
        packets = fragment_payload(b"\x00" * (chunk * n_fragments))
        inert = FaultPlan(blackouts=((1e8, 1e9),))  # never reached

        n_trials = 1200
        gen = np.random.default_rng(404)
        delivered = sum(
            ch.transfer_packets(packets, rng=gen, faults=inert).delivered
            for _ in range(n_trials)
        )
        p = (1.0 - loss_prob ** (max_retries + 1)) ** n_fragments
        lo = binom.ppf(0.005, n_trials, p)
        hi = binom.ppf(0.995, n_trials, p)
        assert lo <= delivered <= hi
