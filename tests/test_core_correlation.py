"""Tests for repro.core.correlation: eq. (2) plain and sliding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    sliding_trajectory_correlation,
    trajectory_correlation,
)
from repro.core.power_vector import pearson_correlation


def random_traj(n_ch, n_marks, seed=0, mean=-80.0):
    rng = np.random.default_rng(seed)
    base = rng.normal(mean, 6.0, size=(n_ch, 1))
    return base + rng.normal(0.0, 4.0, size=(n_ch, n_marks))


class TestTrajectoryCorrelationEq2:
    def test_self_correlation_is_two(self):
        s = random_traj(8, 40)
        assert trajectory_correlation(s, s) == pytest.approx(2.0)

    def test_range_bounds(self):
        a = random_traj(8, 40, seed=1)
        b = random_traj(8, 40, seed=2)
        r = trajectory_correlation(a, b)
        assert -2.0 <= r <= 2.0

    def test_independent_near_zero(self):
        a = random_traj(40, 300, seed=3)
        b = random_traj(40, 300, seed=4)
        assert abs(trajectory_correlation(a, b)) < 0.4

    def test_equals_sum_of_terms(self):
        a = random_traj(5, 30, seed=5)
        b = random_traj(5, 30, seed=6)
        term1 = np.mean(
            [pearson_correlation(a[i], b[i]) for i in range(5)]
        )
        term2 = pearson_correlation(a.mean(axis=1), b.mean(axis=1))
        assert trajectory_correlation(a, b) == pytest.approx(term1 + term2)

    def test_constant_channel_contributes_zero(self):
        a = random_traj(4, 30, seed=7)
        b = random_traj(4, 30, seed=8)
        a2 = a.copy()
        a2[0] = -75.0  # constant channel
        r = trajectory_correlation(a2, b)
        per = [pearson_correlation(a2[i], b[i]) for i in range(1, 4)]
        term2 = pearson_correlation(a2.mean(axis=1), b.mean(axis=1))
        assert r == pytest.approx(np.sum(per) / 4 + term2)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            trajectory_correlation(np.zeros((3, 10)), np.zeros((3, 11)))
        with pytest.raises(ValueError):
            trajectory_correlation(np.zeros((3, 1)), np.zeros((3, 1)))

    def test_symmetry(self):
        a = random_traj(6, 25, seed=9)
        b = random_traj(6, 25, seed=10)
        assert trajectory_correlation(a, b) == pytest.approx(
            trajectory_correlation(b, a)
        )


class TestSlidingCorrelation:
    def test_matches_direct_evaluation(self):
        target = random_traj(7, 60, seed=11)
        query = target[:, 20:35] + np.random.default_rng(12).normal(
            0, 1.0, size=(7, 15)
        )
        scores = sliding_trajectory_correlation(query, target)
        assert scores.shape == (60 - 15 + 1,)
        for p in (0, 10, 20, 33, 45):
            direct = trajectory_correlation(query, target[:, p : p + 15])
            assert scores[p] == pytest.approx(direct, abs=1e-9)

    def test_peak_at_true_position(self):
        target = random_traj(10, 200, seed=13)
        query = target[:, 120:160]
        scores = sliding_trajectory_correlation(query, target)
        assert int(np.argmax(scores)) == 120
        assert scores[120] == pytest.approx(2.0)

    def test_noisy_peak_still_found(self):
        target = random_traj(20, 300, seed=14)
        rng = np.random.default_rng(15)
        query = target[:, 200:260] + rng.normal(0, 1.5, size=(20, 61))[:, :60]
        scores = sliding_trajectory_correlation(query, target)
        assert abs(int(np.argmax(scores)) - 200) <= 1

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            sliding_trajectory_correlation(np.zeros((3, 10)), np.zeros((4, 20)))

    def test_target_too_short(self):
        with pytest.raises(ValueError):
            sliding_trajectory_correlation(np.zeros((3, 10)), np.zeros((3, 5)))

    def test_query_too_short(self):
        with pytest.raises(ValueError):
            sliding_trajectory_correlation(np.zeros((3, 1)), np.zeros((3, 5)))

    def test_single_position(self):
        a = random_traj(4, 30, seed=16)
        scores = sliding_trajectory_correlation(a, a)
        assert scores.shape == (1,)
        assert scores[0] == pytest.approx(2.0)

    def test_constant_target_window_zero_score(self):
        query = random_traj(3, 10, seed=17)
        target = np.full((3, 30), -80.0)
        scores = sliding_trajectory_correlation(query, target)
        assert np.allclose(scores, 0.0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_bounded_for_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        query = rng.normal(size=(4, 8))
        target = rng.normal(size=(4, 30))
        scores = sliding_trajectory_correlation(query, target)
        assert np.all(scores <= 2.0 + 1e-9)
        assert np.all(scores >= -2.0 - 1e-9)
        assert np.all(np.isfinite(scores))


class TestDegenerateWindows:
    """Regression: zero-variance / NaN windows yield defined values.

    A window with no spatial information must contribute exactly 0 —
    never a NaN, inf, or numpy warning that could leak into SYN
    acceptance — under every kernel.
    """

    def test_both_sides_constant_is_zero(self):
        a = np.full((3, 20), -80.0)
        b = np.full((3, 20), -75.0)
        assert trajectory_correlation(a, b) == 0.0

    def test_one_side_constant_is_zero(self):
        rng = np.random.default_rng(0)
        a = np.full((3, 20), -80.0)
        b = rng.normal(-80, 6, size=(3, 20))
        assert trajectory_correlation(a, b) == 0.0
        assert trajectory_correlation(b, a) == 0.0

    def test_no_numpy_warnings_on_degenerate_input(self):
        import warnings

        rng = np.random.default_rng(1)
        a = rng.normal(-80, 6, size=(4, 25))
        a[0] = -70.0  # dead channel
        b = rng.normal(-80, 6, size=(4, 25))
        b[1] = np.nan  # missing channel
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            r = trajectory_correlation(a, b)
            s_ref = sliding_trajectory_correlation(a, b, kernel="reference")
            s_bat = sliding_trajectory_correlation(a, b, kernel="batched")
        assert np.isfinite(r)
        assert np.isfinite(s_ref).all() and np.isfinite(s_bat).all()

    def test_nan_channel_gated_like_dead_channel(self):
        rng = np.random.default_rng(2)
        a = rng.normal(-80, 6, size=(4, 30))
        b = rng.normal(-80, 6, size=(4, 30))
        a_nan = a.copy()
        a_nan[2, 7] = np.nan
        from repro.core.power_vector import pearson_correlation

        # The NaN channel contributes 0 to the channel average (but still
        # counts in the denominator); the cross-channel profile term is
        # killed because one mean is undefined.
        per = [pearson_correlation(a_nan[i], b[i]) for i in (0, 1, 3)]
        expected = float(np.sum(per)) / 4
        assert trajectory_correlation(a_nan, b) == pytest.approx(
            expected, abs=1e-12
        )

    @pytest.mark.parametrize("kernel", ["reference", "batched"])
    def test_nan_gap_only_poisons_covering_windows(self, kernel):
        # Regression for the historical cumulative-sum kernel, where one
        # NaN smeared into the running sums of *every* later position.
        rng = np.random.default_rng(3)
        target = rng.normal(-80, 6, size=(3, 60))
        target[1, 20:23] = np.nan
        query = rng.normal(-80, 6, size=(3, 10))
        scores = sliding_trajectory_correlation(query, target, kernel=kernel)
        assert np.isfinite(scores).all()
        for p in range(scores.size):
            direct = trajectory_correlation(query, target[:, p : p + 10])
            assert scores[p] == pytest.approx(direct, abs=1e-9)

    @pytest.mark.parametrize("kernel", ["reference", "batched"])
    def test_constant_stretch_scores_defined(self, kernel):
        rng = np.random.default_rng(4)
        target = rng.normal(-80, 6, size=(3, 60))
        target[:, 25:45] = -80.0  # zero-variance stretch
        query = rng.normal(-80, 6, size=(3, 12))
        scores = sliding_trajectory_correlation(query, target, kernel=kernel)
        assert np.isfinite(scores).all()
        # Windows fully inside the stretch carry no information at all.
        assert scores[30] == pytest.approx(0.0, abs=1e-12)
