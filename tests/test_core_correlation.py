"""Tests for repro.core.correlation: eq. (2) plain and sliding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    sliding_trajectory_correlation,
    trajectory_correlation,
)
from repro.core.power_vector import pearson_correlation


def random_traj(n_ch, n_marks, seed=0, mean=-80.0):
    rng = np.random.default_rng(seed)
    base = rng.normal(mean, 6.0, size=(n_ch, 1))
    return base + rng.normal(0.0, 4.0, size=(n_ch, n_marks))


class TestTrajectoryCorrelationEq2:
    def test_self_correlation_is_two(self):
        s = random_traj(8, 40)
        assert trajectory_correlation(s, s) == pytest.approx(2.0)

    def test_range_bounds(self):
        a = random_traj(8, 40, seed=1)
        b = random_traj(8, 40, seed=2)
        r = trajectory_correlation(a, b)
        assert -2.0 <= r <= 2.0

    def test_independent_near_zero(self):
        a = random_traj(40, 300, seed=3)
        b = random_traj(40, 300, seed=4)
        assert abs(trajectory_correlation(a, b)) < 0.4

    def test_equals_sum_of_terms(self):
        a = random_traj(5, 30, seed=5)
        b = random_traj(5, 30, seed=6)
        term1 = np.mean(
            [pearson_correlation(a[i], b[i]) for i in range(5)]
        )
        term2 = pearson_correlation(a.mean(axis=1), b.mean(axis=1))
        assert trajectory_correlation(a, b) == pytest.approx(term1 + term2)

    def test_constant_channel_contributes_zero(self):
        a = random_traj(4, 30, seed=7)
        b = random_traj(4, 30, seed=8)
        a2 = a.copy()
        a2[0] = -75.0  # constant channel
        r = trajectory_correlation(a2, b)
        per = [pearson_correlation(a2[i], b[i]) for i in range(1, 4)]
        term2 = pearson_correlation(a2.mean(axis=1), b.mean(axis=1))
        assert r == pytest.approx(np.sum(per) / 4 + term2)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            trajectory_correlation(np.zeros((3, 10)), np.zeros((3, 11)))
        with pytest.raises(ValueError):
            trajectory_correlation(np.zeros((3, 1)), np.zeros((3, 1)))

    def test_symmetry(self):
        a = random_traj(6, 25, seed=9)
        b = random_traj(6, 25, seed=10)
        assert trajectory_correlation(a, b) == pytest.approx(
            trajectory_correlation(b, a)
        )


class TestSlidingCorrelation:
    def test_matches_direct_evaluation(self):
        target = random_traj(7, 60, seed=11)
        query = target[:, 20:35] + np.random.default_rng(12).normal(
            0, 1.0, size=(7, 15)
        )
        scores = sliding_trajectory_correlation(query, target)
        assert scores.shape == (60 - 15 + 1,)
        for p in (0, 10, 20, 33, 45):
            direct = trajectory_correlation(query, target[:, p : p + 15])
            assert scores[p] == pytest.approx(direct, abs=1e-9)

    def test_peak_at_true_position(self):
        target = random_traj(10, 200, seed=13)
        query = target[:, 120:160]
        scores = sliding_trajectory_correlation(query, target)
        assert int(np.argmax(scores)) == 120
        assert scores[120] == pytest.approx(2.0)

    def test_noisy_peak_still_found(self):
        target = random_traj(20, 300, seed=14)
        rng = np.random.default_rng(15)
        query = target[:, 200:260] + rng.normal(0, 1.5, size=(20, 61))[:, :60]
        scores = sliding_trajectory_correlation(query, target)
        assert abs(int(np.argmax(scores)) - 200) <= 1

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            sliding_trajectory_correlation(np.zeros((3, 10)), np.zeros((4, 20)))

    def test_target_too_short(self):
        with pytest.raises(ValueError):
            sliding_trajectory_correlation(np.zeros((3, 10)), np.zeros((3, 5)))

    def test_query_too_short(self):
        with pytest.raises(ValueError):
            sliding_trajectory_correlation(np.zeros((3, 1)), np.zeros((3, 5)))

    def test_single_position(self):
        a = random_traj(4, 30, seed=16)
        scores = sliding_trajectory_correlation(a, a)
        assert scores.shape == (1,)
        assert scores[0] == pytest.approx(2.0)

    def test_constant_target_window_zero_score(self):
        query = random_traj(3, 10, seed=17)
        target = np.full((3, 30), -80.0)
        scores = sliding_trajectory_correlation(query, target)
        assert np.allclose(scores, 0.0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_bounded_for_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        query = rng.normal(size=(4, 8))
        target = rng.normal(size=(4, 30))
        scores = sliding_trajectory_correlation(query, target)
        assert np.all(scores <= 2.0 + 1e-9)
        assert np.all(scores >= -2.0 - 1e-9)
        assert np.all(np.isfinite(scores))
