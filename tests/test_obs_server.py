"""Tests for repro.obs.server: the /metrics + /healthz endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    register_aux_registry,
    unregister_aux_registry,
)
from repro.obs.openmetrics import CONTENT_TYPE, parse


@pytest.fixture
def server():
    registry = MetricsRegistry()
    registry.inc("fleet.queries", 3)
    registry.observe("fleet.tick_s", 0.02, buckets=(0.1, 1.0))
    with MetricsServer(port=0, registry=registry) as srv:
        yield srv


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


class TestMetricsServer:
    def test_port_zero_binds_a_free_port(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_serves_valid_exposition(self, server):
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        families = parse(body)
        assert families["fleet_queries"]["samples"] == [
            ("fleet_queries_total", {}, 3.0)
        ]
        assert "fleet_tick_s" in families

    def test_scrapes_see_live_values(self, server):
        server.registry.inc("fleet.queries", 7)
        _, _, body = _get(server.url + "/metrics")
        assert parse(body)["fleet_queries"]["samples"][0][2] == 10.0

    def test_aux_registries_served(self, server):
        aux = MetricsRegistry()
        aux.observe("fleet.query_latency_s", 0.05, buckets=(0.1, 1.0))
        register_aux_registry("test.aux", aux)
        try:
            _, _, body = _get(server.url + "/metrics")
        finally:
            unregister_aux_registry("test.aux", aux)
        assert "fleet_query_latency_s" in parse(body)

    def test_healthz(self, server):
        _get(server.url + "/metrics")
        status, headers, body = _get(server.url + "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0
        assert health["scrapes"] >= 1

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_query_string_ignored(self, server):
        status, _, body = _get(server.url + "/metrics?format=openmetrics")
        assert status == 200 and parse(body)

    def test_close_stops_serving(self):
        server = MetricsServer(port=0, registry=MetricsRegistry())
        url = server.url
        server.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/metrics", timeout=1)
