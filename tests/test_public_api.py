"""Tests for the public package surface: exports, quickstart, docs links."""

import numpy as np
import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_surface(self):
        assert repro.RupsEngine is not None
        assert repro.RupsConfig is not None
        assert repro.RngFactory is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.gsm",
            "repro.roads",
            "repro.vehicles",
            "repro.sensors",
            "repro.v2v",
            "repro.baselines",
            "repro.experiments",
            "repro.fleet",
            "repro.util",
        ],
    )
    def test_subpackage_all_resolvable(self, module):
        import importlib

        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.gsm",
            "repro.roads",
            "repro.vehicles",
            "repro.sensors",
            "repro.v2v",
            "repro.baselines",
            "repro.experiments",
            "repro.fleet",
            "repro.util",
        ],
    )
    def test_public_items_documented(self, module):
        """Every public item the package exports carries a docstring."""
        import importlib

        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module}.{name} lacks a docstring"


class TestQuickstart:
    def test_run_resolves_and_is_accurate(self):
        from repro import quickstart

        result = quickstart.run(seed=42, duration_s=300.0)
        assert result.distance_m is not None
        assert result.error_m is not None
        assert result.error_m < 10.0
        assert result.truth_m > 0
        assert "m" in str(result)

    def test_run_deterministic(self):
        from repro import quickstart

        a = quickstart.run(seed=7, duration_s=300.0)
        b = quickstart.run(seed=7, duration_s=300.0)
        assert a.distance_m == b.distance_m
        assert a.query_time_s == b.query_time_s
