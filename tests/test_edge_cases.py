"""Edge-case coverage across modules: error paths and boundary behaviour
that the per-module suites don't reach."""

import numpy as np
import pytest

from repro.core.binding import bind_scan
from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.roads.network import RoadNetworkConfig, generate_network
from repro.roads.route import build_route, random_route
from repro.util.stats import cdf_at
from repro.v2v.channel import DsrcChannel
from repro.v2v.exchange import ExchangeSession


class TestChannelRetryExhaustion:
    def test_undeliverable_with_zero_retries(self):
        ch = DsrcChannel(loss_prob=0.9, max_retries=0)
        # with 90% loss and no retries, a many-packet transfer fails
        result = ch.transfer_bytes(b"\x00" * 100_000, rng=3)
        assert not result.delivered

    def test_exchange_session_state_frozen_on_failure(self):
        from tests.test_v2v_serialization_exchange import make_traj

        lossy = DsrcChannel(loss_prob=0.9, max_retries=0)
        session = ExchangeSession(channel=lossy, rng=1)
        traj = make_traj(n_channels=20, n_marks=301)
        result = session.send_update(traj)
        if not result.delivered:
            # undelivered full sync leaves the session without a peer state
            assert not session.locked
            with pytest.raises(RuntimeError):
                session.notify_syn_found()


class TestRouteErrors:
    @pytest.fixture(scope="class")
    def network(self):
        return generate_network(RoadNetworkConfig(blocks_x=4, blocks_y=3), seed=2)

    def test_build_route_needs_two_nodes(self, network):
        with pytest.raises(ValueError):
            build_route(network, [network.segments[0].u])

    def test_random_route_impossible_length(self, network):
        with pytest.raises(RuntimeError):
            random_route(network, min_length_m=1e9, rng=0, max_tries=3)

    def test_random_route_missing_type(self, network):
        from repro.roads.types import RoadType

        # ELEVATED exists; but a subgraph restricted to a type that the
        # network's walk can't satisfy at huge length must fail cleanly.
        with pytest.raises((RuntimeError, ValueError)):
            random_route(
                network,
                min_length_m=1e8,
                road_type=RoadType.UNDER_ELEVATED,
                rng=0,
                max_tries=3,
            )


class TestEngineOverrides:
    def test_context_length_override(self, shared_pair, shared_engine):
        short = shared_engine.build_trajectory(
            shared_pair.rear.scan,
            shared_pair.rear.estimated,
            at_time_s=200.0,
            context_length_m=150.0,
        )
        assert short.n_marks == 151

    def test_spacing_respected_in_binding(self, shared_pair):
        traj = bind_scan(
            shared_pair.rear.scan,
            shared_pair.rear.estimated,
            at_time_s=200.0,
            context_length_m=200.0,
            spacing_m=2.0,
        )
        assert traj.spacing_m == 2.0
        assert traj.n_marks == 101

    def test_coarse_spacing_pipeline(self, shared_pair):
        # A full query at 2 m binding resolution: engine config drives
        # both binding and matching consistently.
        engine = RupsEngine(
            RupsConfig(
                context_length_m=600.0,
                window_channels=30,
                spacing_m=2.0,
                window_length_m=84.0,
                syn_stride_m=24.0,
            )
        )
        tq = 200.0
        own = engine.build_trajectory(
            shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=tq
        )
        other = engine.build_trajectory(
            shared_pair.front.scan, shared_pair.front.estimated, at_time_s=tq
        )
        assert own.spacing_m == 2.0
        est = engine.estimate_relative_distance(own, other)
        assert est.resolved
        truth = float(shared_pair.scenario.true_relative_distance(tq))
        assert est.distance_m == pytest.approx(truth, abs=10.0)


class TestStatsEdges:
    def test_cdf_at_below_and_above(self):
        vals = cdf_at(np.array([1.0, 2.0, 3.0]), np.array([0.0, 3.0, 99.0]))
        assert vals[0] == 0.0
        assert vals[1] == pytest.approx(1.0)
        assert vals[2] == pytest.approx(1.0)


class TestNetworkStructure:
    def test_ramps_connect_elevated(self):
        net = generate_network(RoadNetworkConfig(blocks_x=4, blocks_y=3), seed=1)
        import networkx as nx

        elevated_nodes = [n for n in net.graph.nodes if isinstance(n, tuple) and n and n[0] == "elev"]
        assert elevated_nodes
        surface = (0, 0)
        for node in elevated_nodes[:2]:
            assert nx.has_path(net.graph, surface, node)
