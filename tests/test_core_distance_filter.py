"""Tests for repro.core.tracking.DistanceFilter (alpha-beta smoother)."""

import numpy as np
import pytest

from repro.core.tracking import DistanceFilter


class TestDistanceFilter:
    def test_uninitialized_returns_none(self):
        f = DistanceFilter()
        assert f.step(0.0, None) is None
        assert not f.initialized

    def test_first_measurement_initializes(self):
        f = DistanceFilter()
        assert f.step(0.0, 25.0) == pytest.approx(25.0)
        assert f.initialized
        assert not f.stale

    def test_tracks_constant_gap(self):
        f = DistanceFilter()
        rng = np.random.default_rng(0)
        outs = [f.step(t, 30.0 + rng.normal(0, 1.0)) for t in np.arange(0, 20, 0.5)]
        assert outs[-1] == pytest.approx(30.0, abs=1.5)
        assert f.closing_speed_ms == pytest.approx(0.0, abs=0.6)

    def test_tracks_linear_gap(self):
        f = DistanceFilter()
        for t in np.arange(0.0, 30.0, 0.5):
            out = f.step(t, 20.0 + 0.5 * t)
        assert out == pytest.approx(20.0 + 0.5 * 29.5, abs=1.0)
        assert f.closing_speed_ms == pytest.approx(0.5, abs=0.15)

    def test_smoothing_reduces_noise(self):
        rng = np.random.default_rng(1)
        times = np.arange(0.0, 60.0, 1.0)
        truth = 25.0 + 3.0 * np.sin(times / 15.0)
        noisy = truth + rng.normal(0, 2.0, times.size)
        f = DistanceFilter(alpha=0.4, beta=0.05)
        filtered = np.array([f.step(t, m) for t, m in zip(times, noisy)])
        warmup = 10
        raw_rmse = np.sqrt(np.mean((noisy[warmup:] - truth[warmup:]) ** 2))
        flt_rmse = np.sqrt(np.mean((filtered[warmup:] - truth[warmup:]) ** 2))
        assert flt_rmse < raw_rmse

    def test_coasts_through_gaps(self):
        f = DistanceFilter(max_coast_s=5.0)
        for t in np.arange(0.0, 10.0, 1.0):
            f.step(t, 20.0 + 1.0 * t)
        # two missing periods: prediction continues the trend
        out = f.step(12.0, None)
        assert out == pytest.approx(32.0, abs=2.0)
        assert not f.stale

    def test_goes_stale_after_budget(self):
        f = DistanceFilter(max_coast_s=3.0)
        f.step(0.0, 20.0)
        f.step(1.0, 20.0)
        assert f.step(10.0, None) is None
        assert f.stale

    def test_recovers_from_stale(self):
        f = DistanceFilter(max_coast_s=3.0)
        f.step(0.0, 20.0)
        f.step(10.0, None)
        assert f.step(11.0, 22.0) is not None
        assert not f.stale

    def test_reinitializes_after_long_coast_gap(self):
        """Regression: a measurement after staleness must re-initialize.

        Previously the filter kept integrating ``d += v * dt`` through an
        arbitrarily long gap while returning None, and the first
        measurement after the gap only alpha-corrected from that
        far-extrapolated state — leaving a large transient error.
        """
        f = DistanceFilter(alpha=0.5, beta=0.1, max_coast_s=3.0)
        # Establish a strong closing velocity, then go silent for long.
        for t in np.arange(0.0, 5.0, 1.0):
            f.step(t, 20.0 + 5.0 * t)
        assert f.closing_speed_ms > 1.0
        for t in np.arange(5.5, 600.0, 0.5):
            assert f.step(t, None) is None or t - 4.0 <= 3.0
        # Without re-initialization the prediction would sit thousands of
        # metres away and alpha=0.5 would report ~half that error.
        out = f.step(600.0, 30.0)
        assert out == pytest.approx(30.0)
        assert f.closing_speed_ms == 0.0
        assert not f.stale
        # And the filter keeps tracking normally afterwards.
        out2 = f.step(601.0, 31.0)
        assert out2 == pytest.approx(31.0, abs=1.0)

    def test_frozen_while_stale_does_not_integrate(self):
        f = DistanceFilter(max_coast_s=2.0)
        f.step(0.0, 10.0)
        f.step(1.0, 12.0)  # v estimate > 0
        f.step(10.0, None)  # stale
        f.step(100.0, None)  # still stale: state frozen, no drift
        assert f.step(100.5, 15.0) == pytest.approx(15.0)

    def test_reset(self):
        f = DistanceFilter()
        f.step(0.0, 20.0)
        f.reset()
        assert not f.initialized
        assert f.step(5.0, None) is None

    def test_time_monotonicity_enforced(self):
        f = DistanceFilter()
        f.step(5.0, 20.0)
        with pytest.raises(ValueError):
            f.step(4.0, 21.0)

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            DistanceFilter(alpha=0.1, beta=0.5)
        with pytest.raises(ValueError):
            DistanceFilter(max_coast_s=0.0)
