"""Tests for repro.core.tracking: continuous tracking sessions."""

import pickle

import numpy as np
import pytest

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.core.tracking import RupsTracker

from tests.test_core_syn_resolver import synthetic_pair

CFG = RupsConfig(
    context_length_m=500.0,
    window_length_m=60.0,
    window_channels=20,
    coherency_threshold=1.2,
    n_syn_points=3,
    syn_stride_m=20.0,
)


class TestRupsTracker:
    def test_first_update_full_then_locked(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        u1 = tracker.update(rear, front)
        assert u1.mode == "full"
        assert u1.estimate.resolved
        assert tracker.locked
        u2 = tracker.update(rear, front)
        assert u2.mode == "locked"
        assert u2.estimate.resolved
        assert u2.estimate.distance_m == pytest.approx(30.0, abs=3.0)

    def test_locked_updates_consistent(self):
        rear, front = synthetic_pair(gap_m=25.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        full = tracker.update(rear, front).estimate.distance_m
        locked = tracker.update(rear, front).estimate.distance_m
        assert locked == pytest.approx(full, abs=2.0)

    def test_unrelated_never_locks(self):
        rear, _ = synthetic_pair(seed=3)
        _, foreign = synthetic_pair(seed=88)
        tracker = RupsTracker(CFG)
        for _ in range(3):
            u = tracker.update(rear, foreign)
            assert not u.estimate.resolved
        assert not tracker.locked
        assert tracker.last_distance_m() is None

    def test_lock_loss_falls_back_to_full(self):
        rear, front = synthetic_pair(gap_m=30.0)
        _, foreign = synthetic_pair(seed=99)
        tracker = RupsTracker(CFG, locked_context_m=150.0, max_locked_failures=1)
        tracker.update(rear, front)
        assert tracker.locked
        # neighbour replaced by an unrelated trajectory: locked search
        # fails, tracker retries full and reports unlocked.
        u = tracker.update(rear, foreign)
        assert not u.locked_after
        assert not tracker.locked

    def test_relock_after_recovery(self):
        rear, front = synthetic_pair(gap_m=30.0)
        _, foreign = synthetic_pair(seed=99)
        tracker = RupsTracker(CFG, locked_context_m=150.0, max_locked_failures=1)
        tracker.update(rear, front)
        tracker.update(rear, foreign)  # lock lost
        u = tracker.update(rear, front)
        assert u.estimate.resolved
        assert tracker.locked

    def test_history_and_last_distance(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        tracker.update(rear, front)
        assert len(tracker.history) == 2
        assert tracker.last_distance_m() == pytest.approx(30.0, abs=3.0)

    def test_reset(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        tracker.reset()
        assert not tracker.locked
        assert tracker.history == []

    def test_trim_leaves_short_contexts_alone(self):
        rear, front = synthetic_pair(gap_m=20.0, rear_len=101, front_len=151)
        tracker = RupsTracker(CFG, locked_context_m=400.0)
        u = tracker.update(rear, front)
        # first update always full; nothing to trim anyway
        assert u.mode == "full"

    def test_validation(self):
        with pytest.raises(ValueError):
            RupsTracker(CFG, locked_context_m=10.0)  # below window length
        with pytest.raises(ValueError):
            RupsTracker(CFG, locked_context_m=150.0, max_locked_failures=0)
        with pytest.raises(ValueError):
            RupsTracker(CFG, staleness_budget_s=0.0)


class TestDegradedTracking:
    def test_fresh_context_not_degraded(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        u = tracker.update(rear, front)
        assert not u.degraded
        assert u.context_age_s == 0.0

    def test_missing_context_tracks_against_last(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        # Exchange dropped this period: no fresh context, but the held
        # one is recent — track against it, flagged degraded.
        u = tracker.update(rear, other=None, context_age_s=0.3)
        assert u.degraded
        assert u.context_age_s == pytest.approx(0.3)
        assert u.estimate.resolved
        assert u.locked_after
        assert u.estimate.distance_m == pytest.approx(30.0, abs=3.0)

    def test_aged_fresh_context_flagged_degraded(self):
        # Even a just-delivered context can be old (it sat in the
        # reassembly buffer through NACK rounds).
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        u = tracker.update(rear, front, context_age_s=0.4)
        assert u.degraded

    def test_staleness_budget_drops_lock(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0, staleness_budget_s=1.0)
        tracker.update(rear, front)
        assert tracker.locked
        u = tracker.update(rear, other=None, context_age_s=1.5)
        assert u.degraded
        assert not u.locked_after
        assert not tracker.locked

    def test_stale_update_searches_full_not_locked(self):
        """Regression: staleness must be decided before the search mode.

        Previously an over-budget update still ran the locked (trimmed)
        search, returned ``mode="locked"`` with ``locked_after=False``
        (a contradictory TrackerUpdate), and left the trim cache warm
        for a neighbour whose context was no longer trusted.
        """
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0, staleness_budget_s=1.0)
        tracker.update(rear, front)
        tracker.update(rear, front)  # locked update warms the trim cache
        assert tracker._trim_cache
        u = tracker.update(rear, other=None, context_age_s=2.0)
        assert u.mode == "full"
        assert not u.locked_after
        assert tracker._trim_cache == {}

    def test_lock_drop_on_failures_clears_trim_cache(self):
        rear, front = synthetic_pair(gap_m=30.0)
        _, foreign = synthetic_pair(seed=99)
        tracker = RupsTracker(CFG, locked_context_m=150.0, max_locked_failures=1)
        tracker.update(rear, front)
        tracker.update(rear, front)
        assert tracker._trim_cache
        tracker.update(rear, foreign)  # locked fails, full retry fails
        assert not tracker.locked
        assert tracker._trim_cache == {}

    def test_fresh_context_relocks_after_staleness(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0, staleness_budget_s=1.0)
        tracker.update(rear, front)
        tracker.update(rear, other=None, context_age_s=2.0)  # lock dropped
        u = tracker.update(rear, front)
        assert not u.degraded
        assert u.locked_after

    def test_no_context_ever_reports_unresolved(self):
        rear, _ = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        u = tracker.update(rear, other=None, context_age_s=5.0)
        assert u.degraded
        assert not u.estimate.resolved
        assert not u.locked_after
        assert len(tracker.history) == 1

    def test_reset_clears_last_context(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        tracker.reset()
        u = tracker.update(rear, other=None)
        assert not u.estimate.resolved

    def test_negative_age_rejected(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        with pytest.raises(ValueError):
            tracker.update(rear, front, context_age_s=-0.1)

    def test_negative_age_leaves_session_untouched(self):
        """Regression: validation must run before any state mutation.

        The pre-fix path stored the offered context *before* checking
        ``context_age_s``, so a rejected call silently replaced the held
        neighbour context — the next exchange-loss period then tracked
        against a context the session was told was invalid.
        """
        rear, front = synthetic_pair(gap_m=30.0)
        _, foreign = synthetic_pair(seed=88)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        held = tracker._last_context
        assert held is front
        was_locked = tracker.locked
        n_history = len(tracker.history)
        with pytest.raises(ValueError):
            tracker.update(rear, foreign, context_age_s=-0.1)
        assert tracker._last_context is held
        assert tracker.locked == was_locked
        assert len(tracker.history) == n_history
        # The held (valid) context still serves exchange-loss periods:
        # a foreign context leaked in by the rejected call would not
        # resolve here.
        u = tracker.update(rear, other=None, context_age_s=0.2)
        assert u.estimate.resolved

    def test_repeated_no_context_updates_stay_unresolved(self):
        """The bottom rung of the degraded ladder holds under repetition."""
        rear, _ = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        for age in (0.5, 1.5, 9.0):
            u = tracker.update(rear, other=None, context_age_s=age)
            assert u.degraded
            assert not u.estimate.resolved
            assert not u.locked_after
            assert u.context_age_s == pytest.approx(age)
        assert not tracker.locked
        assert len(tracker.history) == 3
        assert tracker.last_distance_m() is None

    def test_reset_clears_anchor_and_trim_cache(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        tracker.update(rear, front)  # locked update: cache warm, anchor set
        assert tracker._anchor is not None
        assert tracker._trim_cache
        tracker.reset()
        assert tracker._anchor is None
        assert tracker._trim_cache == {}
        assert tracker._last_context is None
        assert tracker.history == []
        assert not tracker.locked


class TestPlanAbsorbEquivalence:
    """plan/absorb (the fleet service's split) must equal update()."""

    @staticmethod
    def _drive(tracker, engine, own, other, age=0.0):
        """One tracking period through the decomposed path."""
        plan = tracker.plan_update(own, other, context_age_s=age)
        if plan.update is not None:
            return plan.update
        estimate = engine.estimate_relative_distance(*plan.pair)
        update = tracker.absorb_update(plan, estimate)
        if update is None:
            estimate = engine.estimate_relative_distance(*plan.retry_pair)
            update = tracker.absorb_retry(plan, estimate)
        return update

    def test_matches_update_through_full_ladder(self):
        """Every rung: full, locked, locked-failure retry, relock, stale."""
        rear, front = synthetic_pair(gap_m=30.0)
        _, foreign = synthetic_pair(seed=99)
        kwargs = dict(locked_context_m=150.0, max_locked_failures=1)
        reference = RupsTracker(CFG, **kwargs)
        split = RupsTracker(CFG, **kwargs)
        engine = RupsEngine(CFG)
        steps = [
            (rear, front, 0.0),  # full -> lock
            (rear, front, 0.0),  # locked
            (rear, foreign, 0.0),  # locked fails -> full retry -> drop
            (rear, front, 0.0),  # relock
            (rear, None, 0.3),  # degraded against held context
            (rear, None, 9.0),  # past budget: staleness drop
        ]
        for own, other, age in steps:
            a = reference.update(own, other, context_age_s=age)
            b = self._drive(split, engine, own, other, age=age)
            assert pickle.dumps(a) == pickle.dumps(b)
        assert reference.locked == split.locked
        assert pickle.dumps(reference.history) == pickle.dumps(split.history)
        modes = [u.mode for u in reference.history]
        assert "locked" in modes and "full" in modes  # ladder exercised

    def test_no_context_plan_is_already_decided(self):
        rear, _ = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        plan = tracker.plan_update(rear, other=None, context_age_s=1.0)
        assert plan.update is not None
        assert plan.pair is None
        assert len(tracker.history) == 1  # recorded at plan time

    def test_absorb_update_rejects_decided_plan(self):
        rear, _ = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        plan = tracker.plan_update(rear, other=None)
        with pytest.raises(ValueError):
            tracker.absorb_update(plan, plan.update.estimate)

    def test_absorb_retry_requires_requested_retry(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        engine = RupsEngine(CFG)
        plan = tracker.plan_update(rear, front)
        estimate = engine.estimate_relative_distance(*plan.pair)
        with pytest.raises(ValueError):
            tracker.absorb_retry(plan, estimate)
