"""Tests for repro.core.tracking: continuous tracking sessions."""

import numpy as np
import pytest

from repro.core.config import RupsConfig
from repro.core.tracking import RupsTracker

from tests.test_core_syn_resolver import synthetic_pair

CFG = RupsConfig(
    context_length_m=500.0,
    window_length_m=60.0,
    window_channels=20,
    coherency_threshold=1.2,
    n_syn_points=3,
    syn_stride_m=20.0,
)


class TestRupsTracker:
    def test_first_update_full_then_locked(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        u1 = tracker.update(rear, front)
        assert u1.mode == "full"
        assert u1.estimate.resolved
        assert tracker.locked
        u2 = tracker.update(rear, front)
        assert u2.mode == "locked"
        assert u2.estimate.resolved
        assert u2.estimate.distance_m == pytest.approx(30.0, abs=3.0)

    def test_locked_updates_consistent(self):
        rear, front = synthetic_pair(gap_m=25.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        full = tracker.update(rear, front).estimate.distance_m
        locked = tracker.update(rear, front).estimate.distance_m
        assert locked == pytest.approx(full, abs=2.0)

    def test_unrelated_never_locks(self):
        rear, _ = synthetic_pair(seed=3)
        _, foreign = synthetic_pair(seed=88)
        tracker = RupsTracker(CFG)
        for _ in range(3):
            u = tracker.update(rear, foreign)
            assert not u.estimate.resolved
        assert not tracker.locked
        assert tracker.last_distance_m() is None

    def test_lock_loss_falls_back_to_full(self):
        rear, front = synthetic_pair(gap_m=30.0)
        _, foreign = synthetic_pair(seed=99)
        tracker = RupsTracker(CFG, locked_context_m=150.0, max_locked_failures=1)
        tracker.update(rear, front)
        assert tracker.locked
        # neighbour replaced by an unrelated trajectory: locked search
        # fails, tracker retries full and reports unlocked.
        u = tracker.update(rear, foreign)
        assert not u.locked_after
        assert not tracker.locked

    def test_relock_after_recovery(self):
        rear, front = synthetic_pair(gap_m=30.0)
        _, foreign = synthetic_pair(seed=99)
        tracker = RupsTracker(CFG, locked_context_m=150.0, max_locked_failures=1)
        tracker.update(rear, front)
        tracker.update(rear, foreign)  # lock lost
        u = tracker.update(rear, front)
        assert u.estimate.resolved
        assert tracker.locked

    def test_history_and_last_distance(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        tracker.update(rear, front)
        assert len(tracker.history) == 2
        assert tracker.last_distance_m() == pytest.approx(30.0, abs=3.0)

    def test_reset(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        tracker.reset()
        assert not tracker.locked
        assert tracker.history == []

    def test_trim_leaves_short_contexts_alone(self):
        rear, front = synthetic_pair(gap_m=20.0, rear_len=101, front_len=151)
        tracker = RupsTracker(CFG, locked_context_m=400.0)
        u = tracker.update(rear, front)
        # first update always full; nothing to trim anyway
        assert u.mode == "full"

    def test_validation(self):
        with pytest.raises(ValueError):
            RupsTracker(CFG, locked_context_m=10.0)  # below window length
        with pytest.raises(ValueError):
            RupsTracker(CFG, locked_context_m=150.0, max_locked_failures=0)
        with pytest.raises(ValueError):
            RupsTracker(CFG, staleness_budget_s=0.0)


class TestDegradedTracking:
    def test_fresh_context_not_degraded(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        u = tracker.update(rear, front)
        assert not u.degraded
        assert u.context_age_s == 0.0

    def test_missing_context_tracks_against_last(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        # Exchange dropped this period: no fresh context, but the held
        # one is recent — track against it, flagged degraded.
        u = tracker.update(rear, other=None, context_age_s=0.3)
        assert u.degraded
        assert u.context_age_s == pytest.approx(0.3)
        assert u.estimate.resolved
        assert u.locked_after
        assert u.estimate.distance_m == pytest.approx(30.0, abs=3.0)

    def test_aged_fresh_context_flagged_degraded(self):
        # Even a just-delivered context can be old (it sat in the
        # reassembly buffer through NACK rounds).
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        u = tracker.update(rear, front, context_age_s=0.4)
        assert u.degraded

    def test_staleness_budget_drops_lock(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0, staleness_budget_s=1.0)
        tracker.update(rear, front)
        assert tracker.locked
        u = tracker.update(rear, other=None, context_age_s=1.5)
        assert u.degraded
        assert not u.locked_after
        assert not tracker.locked

    def test_stale_update_searches_full_not_locked(self):
        """Regression: staleness must be decided before the search mode.

        Previously an over-budget update still ran the locked (trimmed)
        search, returned ``mode="locked"`` with ``locked_after=False``
        (a contradictory TrackerUpdate), and left the trim cache warm
        for a neighbour whose context was no longer trusted.
        """
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0, staleness_budget_s=1.0)
        tracker.update(rear, front)
        tracker.update(rear, front)  # locked update warms the trim cache
        assert tracker._trim_cache
        u = tracker.update(rear, other=None, context_age_s=2.0)
        assert u.mode == "full"
        assert not u.locked_after
        assert tracker._trim_cache == {}

    def test_lock_drop_on_failures_clears_trim_cache(self):
        rear, front = synthetic_pair(gap_m=30.0)
        _, foreign = synthetic_pair(seed=99)
        tracker = RupsTracker(CFG, locked_context_m=150.0, max_locked_failures=1)
        tracker.update(rear, front)
        tracker.update(rear, front)
        assert tracker._trim_cache
        tracker.update(rear, foreign)  # locked fails, full retry fails
        assert not tracker.locked
        assert tracker._trim_cache == {}

    def test_fresh_context_relocks_after_staleness(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0, staleness_budget_s=1.0)
        tracker.update(rear, front)
        tracker.update(rear, other=None, context_age_s=2.0)  # lock dropped
        u = tracker.update(rear, front)
        assert not u.degraded
        assert u.locked_after

    def test_no_context_ever_reports_unresolved(self):
        rear, _ = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        u = tracker.update(rear, other=None, context_age_s=5.0)
        assert u.degraded
        assert not u.estimate.resolved
        assert not u.locked_after
        assert len(tracker.history) == 1

    def test_reset_clears_last_context(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        tracker.update(rear, front)
        tracker.reset()
        u = tracker.update(rear, other=None)
        assert not u.estimate.resolved

    def test_negative_age_rejected(self):
        rear, front = synthetic_pair(gap_m=30.0)
        tracker = RupsTracker(CFG, locked_context_m=150.0)
        with pytest.raises(ValueError):
            tracker.update(rear, front, context_age_s=-0.1)
