"""Tests for repro.gsm.towers: deployments and mean power."""

import numpy as np
import pytest

from repro.gsm.band import RGSM900
from repro.gsm.towers import ChannelTowers, TowerDeployment, deploy_towers

BOUNDS = (0.0, 0.0, 1000.0, 1000.0)


class TestChannelTowers:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelTowers(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            ChannelTowers(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            ChannelTowers(np.zeros((2, 2)), np.zeros(3))

    def test_n_towers(self):
        ct = ChannelTowers(np.zeros((4, 2)), np.full(4, 55.0))
        assert ct.n_towers == 4


class TestDeploy:
    def test_one_set_per_channel(self):
        dep = deploy_towers(RGSM900, BOUNDS, rng=0)
        assert dep.plan is RGSM900
        for ci in (0, 100, 193):
            assert dep.towers_for(ci).n_towers >= 1

    def test_deterministic(self):
        a = deploy_towers(RGSM900, BOUNDS, rng=3)
        b = deploy_towers(RGSM900, BOUNDS, rng=3)
        assert np.allclose(a.towers_for(5).positions, b.towers_for(5).positions)

    def test_margin_expands_box(self):
        dep = deploy_towers(RGSM900, BOUNDS, rng=0, margin_m=5000.0)
        all_pos = np.vstack(
            [dep.towers_for(c).positions for c in range(RGSM900.n_channels)]
        )
        assert all_pos.min() < -1000.0  # towers outside the bounds proper

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            deploy_towers(RGSM900, (10.0, 0.0, 0.0, 10.0))

    def test_bad_mean(self):
        with pytest.raises(ValueError):
            deploy_towers(RGSM900, BOUNDS, mean_cochannel=-1.0)


class TestMeanPower:
    @pytest.fixture(scope="class")
    def deployment(self):
        return deploy_towers(RGSM900, BOUNDS, rng=7)

    def test_shape(self, deployment):
        pts = np.array([[0.0, 0.0], [500.0, 500.0], [999.0, 0.0]])
        p = deployment.mean_power_dbm(pts)
        assert p.shape == (194, 3)

    def test_channel_subset(self, deployment):
        pts = np.array([[100.0, 100.0]])
        p = deployment.mean_power_dbm(pts, channel_indices=np.array([3, 7]))
        full = deployment.mean_power_dbm(pts)
        assert np.allclose(p[0], full[3])
        assert np.allclose(p[1], full[7])

    def test_sum_exceeds_strongest(self, deployment):
        # Total power from k towers must exceed any single tower's power.
        pts = np.array([[500.0, 500.0]])
        ci = 0
        towers = deployment.towers_for(ci)
        total = deployment.mean_power_dbm(pts, channel_indices=np.array([ci]))[0, 0]
        single_max = -np.inf
        for k in range(towers.n_towers):
            single = TowerDeployment(
                deployment.plan.subset(np.array([ci])),
                [
                    ChannelTowers(
                        towers.positions[k : k + 1], towers.eirp_dbm[k : k + 1]
                    )
                ],
            ).mean_power_dbm(pts)[0, 0]
            single_max = max(single_max, single)
        assert total >= single_max

    def test_mostly_quiet_band(self, deployment):
        # City-scale reuse: most channels should be weak at any location
        # (the physical basis of the paper's top-45 channel selection).
        pts = np.array([[500.0, 500.0]])
        p = deployment.mean_power_dbm(pts)[:, 0]
        assert np.mean(p < -90.0) > 0.3
        assert np.mean(p > -90.0) > 0.05  # ...but some are strong

    def test_rejects_bad_points(self, deployment):
        with pytest.raises(ValueError):
            deployment.mean_power_dbm(np.zeros(3))

    def test_wrong_channel_count_rejected(self):
        with pytest.raises(ValueError):
            TowerDeployment(RGSM900, [])
