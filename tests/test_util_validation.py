"""Tests for repro.util.validation argument checking helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_accepts_zero_non_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_outside(self):
        with pytest.raises(ValueError, match=r"\[0.*1"):
            check_in_range("x", 2.0, 0.0, 1.0)


class TestCheckFinite:
    def test_accepts_finite(self):
        arr = np.array([1.0, 2.0])
        assert np.array_equal(check_finite("a", arr), arr)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="1 non-finite"):
            check_finite("a", np.array([1.0, np.nan]))

    def test_rejects_inf_and_counts(self):
        with pytest.raises(ValueError, match="2 non-finite"):
            check_finite("a", np.array([np.inf, -np.inf, 0.0]))


class TestCheckShape:
    def test_exact_shape(self):
        arr = np.zeros((3, 2))
        assert check_shape("a", arr, (3, 2)) is not None

    def test_wildcard(self):
        check_shape("a", np.zeros((5, 2)), (None, 2))

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimension"):
            check_shape("a", np.zeros(3), (None, 2))

    def test_wrong_size(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("a", np.zeros((3, 3)), (None, 2))
