"""Tests for repro.roads.geometry: polylines and arc-length maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roads.geometry import Polyline, heading_along, resample_polyline


@pytest.fixture
def straight() -> Polyline:
    return Polyline(np.array([[0.0, 0.0], [100.0, 0.0]]))


@pytest.fixture
def l_shape() -> Polyline:
    return Polyline(np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 50.0]]))


class TestConstruction:
    def test_length(self, l_shape):
        assert l_shape.length == pytest.approx(150.0)

    def test_needs_two_vertices(self):
        with pytest.raises(ValueError):
            Polyline(np.array([[0.0, 0.0]]))

    def test_rejects_duplicate_vertices(self):
        with pytest.raises(ValueError, match="zero-length"):
            Polyline(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]]))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Polyline(np.zeros((3, 3)))

    def test_cumulative_lengths_readonly(self, straight):
        with pytest.raises(ValueError):
            straight.cumulative_lengths[0] = 5.0


class TestPosition:
    def test_endpoints(self, l_shape):
        assert np.allclose(l_shape.position(0.0), [0.0, 0.0])
        assert np.allclose(l_shape.position(150.0), [100.0, 50.0])

    def test_mid_segment(self, l_shape):
        assert np.allclose(l_shape.position(50.0), [50.0, 0.0])
        assert np.allclose(l_shape.position(125.0), [100.0, 25.0])

    def test_clamps_out_of_range(self, straight):
        assert np.allclose(straight.position(-10.0), [0.0, 0.0])
        assert np.allclose(straight.position(500.0), [100.0, 0.0])

    def test_vectorized_shape(self, l_shape):
        out = l_shape.position(np.array([0.0, 75.0, 150.0]))
        assert out.shape == (3, 2)

    @given(st.floats(0.0, 150.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_arc_length_consistency(self, s):
        poly = Polyline(np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 50.0]]))
        # distance from start measured along the polyline equals s; the
        # sampling must include interior vertices or chords cut corners.
        fine = np.unique(np.concatenate([np.linspace(0.0, s, 200), [min(100.0, s)]]))
        pts = np.atleast_2d(poly.position(fine))
        travelled = np.sum(np.linalg.norm(np.diff(pts, axis=0), axis=1))
        assert travelled == pytest.approx(s, abs=1e-6)


class TestHeading:
    def test_straight(self, straight):
        assert straight.heading(50.0) == pytest.approx(0.0)

    def test_after_turn(self, l_shape):
        assert l_shape.heading(125.0) == pytest.approx(np.pi / 2)

    def test_vectorized(self, l_shape):
        h = l_shape.heading(np.array([10.0, 125.0]))
        assert np.allclose(h, [0.0, np.pi / 2])


class TestOffsetPosition:
    def test_left_offset_is_ccw_normal(self, straight):
        p = straight.offset_position(50.0, 3.5)
        assert np.allclose(p, [50.0, 3.5])

    def test_right_offset(self, straight):
        p = straight.offset_position(50.0, -3.5)
        assert np.allclose(p, [50.0, -3.5])

    def test_offset_preserves_arc_position(self, l_shape):
        base = l_shape.position(125.0)
        off = l_shape.offset_position(125.0, 2.0)
        assert np.linalg.norm(off - base) == pytest.approx(2.0)


class TestProject:
    def test_on_line(self, straight):
        assert straight.project(np.array([30.0, 0.0])) == pytest.approx(30.0)

    def test_off_line(self, straight):
        assert straight.project(np.array([30.0, 5.0])) == pytest.approx(30.0)

    def test_beyond_end_clamps(self, straight):
        assert straight.project(np.array([200.0, 1.0])) == pytest.approx(100.0)

    def test_second_segment(self, l_shape):
        s = l_shape.project(np.array([102.0, 25.0]))
        assert s == pytest.approx(125.0)

    @given(st.floats(0.0, 150.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_project_inverts_position(self, s):
        poly = Polyline(np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 50.0]]))
        assert poly.project(np.asarray(poly.position(s))) == pytest.approx(
            s, abs=1e-6
        )


class TestResampling:
    def test_resample_spacing(self, straight):
        pts = resample_polyline(straight, spacing=10.0)
        assert pts.shape == (11, 2)
        assert np.allclose(np.diff(pts[:, 0]), 10.0)

    def test_heading_along(self, l_shape):
        h = heading_along(l_shape, spacing=25.0)
        assert h[0] == pytest.approx(0.0)
        assert h[-1] == pytest.approx(np.pi / 2)

    def test_invalid_spacing(self, straight):
        with pytest.raises(ValueError):
            resample_polyline(straight, spacing=0.0)
        with pytest.raises(ValueError):
            heading_along(straight, spacing=-1.0)
