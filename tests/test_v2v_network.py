"""Tests for repro.v2v.network: neighbourhood broadcast scheduling."""

import numpy as np
import pytest

from repro.v2v.channel import DsrcChannel
from repro.v2v.network import (
    NeighborhoodExchange,
    adaptive_context_length,
)


class TestAdaptiveContextLength:
    def test_dense_traffic_short_context(self):
        sparse = adaptive_context_length(5, road_span_m=2000.0)
        dense = adaptive_context_length(50, road_span_m=2000.0)
        assert dense < sparse

    def test_clamped_to_bounds(self):
        assert adaptive_context_length(1, 10_000.0) == 1000.0
        assert adaptive_context_length(1000, 1000.0) == 100.0

    def test_scaling_rule(self):
        # 10 vehicles over 1000 m -> 100 m spacing -> 4x = 400 m context.
        assert adaptive_context_length(10, 1000.0) == pytest.approx(400.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            adaptive_context_length(0, 1000.0)
        with pytest.raises(ValueError):
            adaptive_context_length(5, 0.0)


class TestNeighborhoodExchange:
    def test_round_structure(self):
        hood = NeighborhoodExchange(n_vehicles=4)
        result = hood.broadcast_round(300.0, rng=0)
        assert result.per_vehicle_time_s.shape == (4,)
        assert result.completion_time_s > 0
        assert result.bytes_on_air > 4 * 30_000
        assert 0.0 <= result.delivered_fraction <= 1.0

    def test_contention_scales_with_density(self):
        quiet = NeighborhoodExchange(n_vehicles=2)
        busy = NeighborhoodExchange(n_vehicles=20)
        t_quiet = quiet.broadcast_round(300.0, rng=1).completion_time_s / 2
        t_busy = busy.broadcast_round(300.0, rng=1).completion_time_s / 20
        # per-broadcast time grows with contention
        assert t_busy > t_quiet

    def test_adaptive_beats_fixed_in_heavy_traffic(self):
        hood = NeighborhoodExchange(n_vehicles=25)
        fixed, adaptive = hood.fixed_vs_adaptive(road_span_m=1000.0, rng=2)
        assert adaptive.context_length_m < fixed.context_length_m
        assert adaptive.completion_time_s < fixed.completion_time_s / 3

    def test_adaptive_noop_in_light_traffic(self):
        hood = NeighborhoodExchange(n_vehicles=2)
        fixed, adaptive = hood.fixed_vs_adaptive(road_span_m=5000.0, rng=3)
        assert adaptive.context_length_m == fixed.context_length_m

    def test_last_broadcaster_informed_earlier(self):
        hood = NeighborhoodExchange(n_vehicles=5)
        result = hood.broadcast_round(200.0, rng=4)
        assert result.per_vehicle_time_s[-1] <= result.per_vehicle_time_s[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborhoodExchange(n_vehicles=1)
        with pytest.raises(ValueError):
            NeighborhoodExchange(n_vehicles=3, n_channels=0)
        hood = NeighborhoodExchange(n_vehicles=3)
        with pytest.raises(ValueError):
            hood.broadcast_round(0.0)

    def test_deterministic(self):
        a = NeighborhoodExchange(n_vehicles=3).broadcast_round(200.0, rng=9)
        b = NeighborhoodExchange(n_vehicles=3).broadcast_round(200.0, rng=9)
        assert a.completion_time_s == b.completion_time_s


class TestLossAccounting:
    """Regressions for the paired-comparison and abort-accounting bugs."""

    def test_fixed_vs_adaptive_is_paired(self):
        # In light traffic the adaptive scope clamps to the fixed one, so
        # a properly *paired* comparison must replay identical channel
        # randomness and produce identical rounds.  The old code fed both
        # rounds from one sequential stream, giving each different luck.
        hood = NeighborhoodExchange(
            n_vehicles=2,
            base_channel=DsrcChannel(loss_prob=0.3),
        )
        fixed, adaptive = hood.fixed_vs_adaptive(road_span_m=5000.0, rng=11)
        assert fixed.context_length_m == adaptive.context_length_m
        assert fixed.completion_time_s == adaptive.completion_time_s
        assert fixed.bytes_on_air == adaptive.bytes_on_air
        np.testing.assert_array_equal(
            fixed.per_vehicle_time_s, adaptive.per_vehicle_time_s
        )

    def test_aborted_broadcast_informs_nobody(self):
        # When any broadcast aborts, every *other* vehicle misses that
        # context, so at most the aborting vehicle itself can still be
        # fully informed.
        hood = NeighborhoodExchange(
            n_vehicles=4,
            n_channels=1,
            base_channel=DsrcChannel(loss_prob=0.5, max_retries=0),
        )
        seen_partial = False
        for seed in range(30):
            result = hood.broadcast_round(100.0, rng=seed)
            if 0.0 < result.delivered_fraction < 1.0:
                seen_partial = True
                assert result.fully_informed_fraction <= 1.0 / hood.n_vehicles
        assert seen_partial

    def test_all_aborted_round(self):
        # Nothing gets through: nobody is informed at all.
        hood = NeighborhoodExchange(
            n_vehicles=3,
            base_channel=DsrcChannel(loss_prob=0.9, max_retries=0),
        )
        result = hood.broadcast_round(300.0, rng=0)
        assert result.delivered_fraction == 0.0
        assert result.fully_informed_fraction == 0.0
        assert np.all(np.isnan(result.per_vehicle_time_s))
        assert np.isnan(result.completion_time_s)
