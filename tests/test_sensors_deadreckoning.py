"""Tests for repro.sensors.deadreckoning."""

import numpy as np
import pytest

from repro.sensors.deadreckoning import DeadReckoner, EstimatedTrack
from repro.sensors.speed import ObdSpeedSensor, WheelEncoder
from repro.vehicles.kinematics import constant_speed_profile, urban_speed_profile


def _heading_series(motion, psi=0.5):
    t = np.arange(motion.t0, motion.t1, 0.05)
    return t, np.full(t.size, psi)


class TestEstimatedTrack:
    def test_validation(self):
        with pytest.raises(ValueError):
            EstimatedTrack(
                times_s=np.array([0.0, 1.0]),
                distance_m=np.array([5.0, 1.0]),  # decreasing
                heading_rad=np.zeros(2),
            )
        with pytest.raises(ValueError):
            EstimatedTrack(
                times_s=np.array([1.0, 1.0]),
                distance_m=np.array([0.0, 1.0]),
                heading_rad=np.zeros(2),
            )

    def test_distance_interp(self):
        track = EstimatedTrack(
            times_s=np.array([0.0, 10.0]),
            distance_m=np.array([0.0, 100.0]),
            heading_rad=np.zeros(2),
        )
        assert float(track.distance_at(5.0)) == pytest.approx(50.0)
        assert float(track.time_at_distance(30.0)) == pytest.approx(3.0)

    def test_geo_trajectory_marks(self):
        track = EstimatedTrack(
            times_s=np.linspace(0.0, 10.0, 101),
            distance_m=np.linspace(0.0, 100.0, 101),
            heading_rad=np.full(101, 0.2),
        )
        geo = track.geo_trajectory(length_m=50.0, spacing_m=1.0)
        assert geo.n_marks == 51
        assert geo.end_distance_m == pytest.approx(100.0)
        assert np.allclose(geo.headings_rad, 0.2)
        # timestamps at marks: mark at 75 m crossed at t = 7.5 s
        assert geo.timestamps_s[geo.n_marks // 2] == pytest.approx(7.5, abs=0.05)

    def test_geo_trajectory_at_time(self):
        track = EstimatedTrack(
            times_s=np.linspace(0.0, 10.0, 101),
            distance_m=np.linspace(0.0, 100.0, 101),
            heading_rad=np.zeros(101),
        )
        geo = track.geo_trajectory(at_time_s=5.0, length_m=20.0)
        assert geo.end_distance_m == pytest.approx(50.0)

    def test_geo_trajectory_insufficient(self):
        track = EstimatedTrack(
            times_s=np.array([0.0, 1.0]),
            distance_m=np.array([0.0, 0.5]),
            heading_rad=np.zeros(2),
        )
        with pytest.raises(ValueError, match="not enough"):
            track.geo_trajectory()


class TestDeadReckoner:
    def test_with_wheel_ticks(self):
        motion = urban_speed_profile(180.0, 14.0, rng=0)
        wheel = WheelEncoder(calibration_error=0.0, jitter_s=0.0).sample(motion, rng=0)
        ht, hr = _heading_series(motion)
        track = DeadReckoner().estimate(ht, hr, wheel)
        est = float(track.distance_at(motion.t1)) - float(track.distance_at(motion.t0))
        assert est == pytest.approx(motion.distance_m, rel=0.01)

    def test_with_obd(self):
        motion = urban_speed_profile(180.0, 14.0, rng=1)
        obd = ObdSpeedSensor(scale_error_range=(0.0, 0.0)).sample(motion, rng=0)
        ht, hr = _heading_series(motion)
        track = DeadReckoner().estimate(ht, hr, obd)
        est = track.distance_m[-1] - track.distance_m[0]
        assert est == pytest.approx(motion.distance_m, rel=0.03)

    def test_obd_scale_error_propagates(self):
        motion = constant_speed_profile(100.0, 10.0)
        obd = ObdSpeedSensor(scale_error_range=(0.02, 0.02)).sample(motion, rng=0)
        ht, hr = _heading_series(motion)
        track = DeadReckoner().estimate(ht, hr, obd)
        est = track.distance_m[-1] - track.distance_m[0]
        assert est / motion.distance_m == pytest.approx(1.02, abs=0.005)

    def test_heading_carried_through(self):
        motion = constant_speed_profile(60.0, 10.0)
        wheel = WheelEncoder().sample(motion, rng=0)
        ht, hr = _heading_series(motion, psi=1.1)
        track = DeadReckoner().estimate(ht, hr, wheel)
        assert float(track.heading_at(30.0)) == pytest.approx(1.1, abs=1e-6)

    def test_rejects_unknown_odometry(self):
        motion = constant_speed_profile(10.0, 10.0)
        ht, hr = _heading_series(motion)
        with pytest.raises(TypeError):
            DeadReckoner().estimate(ht, hr, object())

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadReckoner(grid_dt_s=0.0)
        with pytest.raises(ValueError):
            DeadReckoner(heading_smoothing_s=-1.0)
        motion = constant_speed_profile(10.0, 10.0)
        wheel = WheelEncoder().sample(motion, rng=0)
        with pytest.raises(ValueError):
            DeadReckoner().estimate(np.array([0.0]), np.array([0.0]), wheel)
