"""Tests for repro.obs.slo: latency objectives and error budgets."""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    register_aux_registry,
    unregister_aux_registry,
)
from repro.obs import slo
from repro.obs.slo import (
    DEFAULT_FLEET_BUDGETS,
    DEFAULT_FLEET_OBJECTIVES,
    ErrorBudget,
    LatencyObjective,
    any_burning,
    attainment_from,
    evaluate,
    format_report,
    gathered_snapshot,
    set_slo_gauges,
)


def _hist_data(values, edges=(0.1, 0.5, 2.0)):
    reg = MetricsRegistry()
    for v in values:
        reg.observe("h", v, buckets=edges)
    return reg.snapshot()["histograms"]["h"]


def _snapshot(latencies=(), counters=None, edges=(0.1, 0.5, 2.0)):
    reg = MetricsRegistry()
    for v in latencies:
        reg.observe("fleet.query_latency_s", v, buckets=edges)
    for name, value in (counters or {}).items():
        reg.inc(name, value)
    return reg.snapshot()


class TestAttainment:
    def test_empty_is_nan(self):
        # Histograms are created lazily, so "empty" only ever reaches
        # attainment_from as a zero-count dict (e.g. exported JSON).
        assert math.isnan(attainment_from({"count": 0}, 1.0))

    def test_threshold_outside_observed_range(self):
        data = _hist_data([0.2, 0.3, 0.4])
        assert attainment_from(data, 0.1) == 0.0  # below min
        assert attainment_from(data, 0.4) == 1.0  # at max
        assert attainment_from(data, 99.0) == 1.0

    def test_whole_buckets_counted(self):
        # 2 in (min..0.1], 2 in (0.1..0.5], 1 overflow; threshold at an
        # edge counts everything at or under it.
        data = _hist_data([0.05, 0.08, 0.2, 0.4, 5.0])
        assert attainment_from(data, 0.5) == pytest.approx(0.8)

    def test_interpolates_within_bucket(self):
        # One observation per bucket; halfway into the second bucket's
        # span (0.1..0.5) credits half that bucket's mass.
        data = _hist_data([0.05, 0.3, 1.0])
        assert attainment_from(data, 0.3) == pytest.approx((1 + 0.5) / 3)

    def test_monotone_in_threshold(self):
        data = _hist_data([0.05, 0.2, 0.4, 1.0, 5.0])
        thresholds = [0.01, 0.1, 0.3, 0.5, 1.0, 2.0, 10.0]
        values = [attainment_from(data, t) for t in thresholds]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)


class TestObjectives:
    OBJECTIVE = LatencyObjective(
        slug="p95", histogram="fleet.query_latency_s",
        threshold_s=0.5, target=0.95, quantile=0.95,
    )

    def test_met_and_burn(self):
        snap = _snapshot(latencies=[0.05] * 99 + [5.0])
        (status,), _ = evaluate(snap, [self.OBJECTIVE], [])
        assert status.met
        assert status.count == 100
        assert status.attainment == pytest.approx(0.99)
        # 1% misses against a 5% allowance: one fifth of budget burned.
        assert status.burn == pytest.approx(0.2)

    def test_missed(self):
        snap = _snapshot(latencies=[0.05] * 5 + [5.0] * 5)
        (status,), _ = evaluate(snap, [self.OBJECTIVE], [])
        assert not status.met
        assert status.burn > 1.0

    def test_empty_histogram_is_no_data(self):
        (status,), _ = evaluate(_snapshot(), [self.OBJECTIVE], [])
        assert status.count == 0
        assert not status.met
        assert math.isnan(status.attainment)
        assert status.quantile_value.empty

    def test_quantile_flags_surfaced(self):
        # All observations past the last edge: the headline percentile
        # is a clamped interpolation and says so.
        snap = _snapshot(latencies=[10.0, 20.0])
        (status,), _ = evaluate(snap, [self.OBJECTIVE], [])
        assert status.quantile_value.overflow_only

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            LatencyObjective(slug="x", histogram="h", threshold_s=1.0, target=0.0)
        with pytest.raises(ValueError, match="quantile"):
            LatencyObjective(slug="x", histogram="h", threshold_s=1.0, quantile=2.0)


class TestBudgets:
    BUDGET = ErrorBudget(
        slug="serve",
        bad=("fleet.queries.rejected.",),
        total="fleet.queries",
        target=0.995,
    )

    def test_prefix_entries_sum_the_taxonomy(self):
        snap = _snapshot(counters={
            "fleet.queries": 1000,
            "fleet.queries.rejected.unknown_vehicle": 2,
            "fleet.queries.rejected.no_session": 1,
        })
        _, (status,) = evaluate(snap, [], [self.BUDGET])
        assert status.bad == 3
        assert status.error_rate == pytest.approx(0.003)
        assert status.burn == pytest.approx(0.6)
        assert status.met

    def test_exact_entries_read_one_counter(self):
        budget = ErrorBudget(
            slug="locks",
            bad=("tracker.lock_dropped.failures",),
            total="fleet.queries",
            target=0.99,
        )
        snap = _snapshot(counters={
            "fleet.queries": 100,
            "tracker.lock_dropped.failures": 2,
            "tracker.lock_dropped.staleness": 50,  # not in this budget
        })
        _, (status,) = evaluate(snap, [], [budget])
        assert status.bad == 2
        assert status.burn == pytest.approx(2.0)
        assert not status.met

    def test_zero_total_is_vacuously_met(self):
        _, (status,) = evaluate(_snapshot(), [], [self.BUDGET])
        assert status.total == 0 and status.met and status.burn == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            ErrorBudget(slug="x", bad=(), total="t", target=1.0)


class TestGaugesAndReport:
    def _statuses(self):
        snap = _snapshot(
            latencies=[0.05] * 20,
            counters={"fleet.queries": 20},
        )
        return evaluate(snap)

    def test_default_slos_over_healthy_fleet(self):
        objective_statuses, budget_statuses = self._statuses()
        assert len(objective_statuses) == len(DEFAULT_FLEET_OBJECTIVES)
        assert len(budget_statuses) == len(DEFAULT_FLEET_BUDGETS)
        assert all(s.met for s in objective_statuses)
        assert all(s.met for s in budget_statuses)

    def test_set_slo_gauges_names_are_registered(self):
        from repro.obs.names import is_registered_gauge

        reg = MetricsRegistry()
        set_slo_gauges(self._statuses(), registry=reg)
        gauges = reg.snapshot()["gauges"]
        assert "slo.fleet_query_p99.attainment" in gauges
        assert "slo.fleet_query_p99.burn" in gauges
        assert "slo.fleet_serve.error_rate" in gauges
        assert all(is_registered_gauge(name) for name in gauges)

    def test_format_report_structure(self):
        report = format_report(self._statuses())
        assert report.startswith("SLO report")
        for objective in DEFAULT_FLEET_OBJECTIVES:
            assert f"{objective.slug}: MET" in report
        for budget in DEFAULT_FLEET_BUDGETS:
            assert f"{budget.slug}: MET" in report

    def test_format_report_no_data(self):
        report = format_report(evaluate(_snapshot()))
        assert "NO DATA" in report

    def test_any_burning(self):
        assert not any_burning(self._statuses())
        hot = _snapshot(latencies=[5.0] * 10, counters={"fleet.queries": 10})
        assert any_burning(evaluate(hot))
        # NaN burns (empty histograms) never count as burning.
        assert not any_burning(evaluate(_snapshot()))

    def test_gathered_snapshot_folds_aux(self):
        main = MetricsRegistry()
        main.inc("fleet.queries", 5)
        aux = MetricsRegistry()
        aux.observe("fleet.query_latency_s", 0.05, buckets=(0.1, 1.0))
        register_aux_registry("test.aux", aux)
        try:
            snap = gathered_snapshot(main)
        finally:
            unregister_aux_registry("test.aux", aux)
        assert snap["counters"]["fleet.queries"] == 5
        assert snap["histograms"]["fleet.query_latency_s"]["count"] == 1
        objective_statuses, _ = evaluate(snap)
        assert objective_statuses[0].count == 1
