"""Tests for repro.vehicles.kinematics: motion profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vehicles.kinematics import (
    MotionProfile,
    constant_speed_profile,
    urban_speed_profile,
)


class TestMotionProfile:
    def test_validation_alignment(self):
        with pytest.raises(ValueError):
            MotionProfile(np.array([0.0, 1.0]), np.array([0.0]), np.array([1.0, 1.0]))

    def test_validation_monotone_time(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MotionProfile(
                np.array([0.0, 0.0]), np.array([0.0, 1.0]), np.array([1.0, 1.0])
            )

    def test_validation_no_reversing(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            MotionProfile(
                np.array([0.0, 1.0]), np.array([5.0, 1.0]), np.array([1.0, 1.0])
            )

    def test_validation_negative_speed(self):
        with pytest.raises(ValueError, match="non-negative"):
            MotionProfile(
                np.array([0.0, 1.0]), np.array([0.0, 1.0]), np.array([-1.0, 1.0])
            )

    def test_interpolation(self):
        p = constant_speed_profile(10.0, 5.0)
        assert float(p.arc_length_at(2.0)) == pytest.approx(10.0)
        assert float(p.speed_at(3.3)) == pytest.approx(5.0)

    def test_accel_zero_for_constant(self):
        p = constant_speed_profile(10.0, 5.0)
        assert abs(float(p.accel_at(5.0))) < 1e-9

    def test_time_at_distance_inverts(self):
        p = constant_speed_profile(10.0, 4.0)
        assert float(p.time_at_distance(20.0)) == pytest.approx(5.0)

    def test_time_at_distance_plateau(self):
        # Stopped interval: time_at_distance returns the entry time.
        t = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        s = np.array([0.0, 5.0, 5.0, 5.0, 10.0])
        v = np.array([5.0, 0.0, 0.0, 5.0, 5.0])
        p = MotionProfile(t, s, v)
        assert float(p.time_at_distance(5.0)) == pytest.approx(1.0)

    def test_stop_times(self):
        t = np.linspace(0.0, 10.0, 101)
        v = np.where((t > 3.0) & (t < 5.0), 0.0, 5.0)
        s = np.concatenate(([0.0], np.cumsum(0.5 * (v[1:] + v[:-1]) * np.diff(t))))
        p = MotionProfile(t, s, v)
        stops = p.stop_times()
        assert stops[0] == p.t0
        assert any(4.9 <= x <= 5.2 for x in stops[1:])

    def test_shifted(self):
        p = constant_speed_profile(10.0, 5.0)
        q = p.shifted(100.0)
        assert float(q.arc_length_at(0.0)) == pytest.approx(100.0)
        assert q.distance_m == pytest.approx(p.distance_m)


class TestConstantProfile:
    def test_distance(self):
        p = constant_speed_profile(60.0, 10.0)
        assert p.distance_m == pytest.approx(600.0)

    def test_offsets(self):
        p = constant_speed_profile(10.0, 5.0, s0_m=50.0, t0_s=100.0)
        assert p.t0 == pytest.approx(100.0)
        assert float(p.arc_length_at(100.0)) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_speed_profile(0.0, 5.0)
        with pytest.raises(ValueError):
            constant_speed_profile(10.0, -5.0)


class TestUrbanProfile:
    def test_respects_speed_limit(self):
        p = urban_speed_profile(300.0, 14.0, rng=0)
        assert p.v_ms.max() <= 14.0 + 1e-9

    def test_consistent_integration(self):
        p = urban_speed_profile(300.0, 14.0, rng=1)
        # s must be the integral of v (trapezoid) by construction
        ds = np.diff(p.s_m)
        expected = 0.5 * (p.v_ms[1:] + p.v_ms[:-1]) * np.diff(p.times_s)
        assert np.allclose(ds, expected)

    def test_stops_occur(self):
        p = urban_speed_profile(
            900.0, 14.0, rng=2, stop_rate_per_s=1.0 / 60.0
        )
        assert np.any(p.v_ms < 0.05)

    def test_deterministic(self):
        a = urban_speed_profile(120.0, 14.0, rng=5)
        b = urban_speed_profile(120.0, 14.0, rng=5)
        assert np.array_equal(a.v_ms, b.v_ms)

    def test_mean_speed_reasonable(self):
        p = urban_speed_profile(600.0, 14.0, rng=3)
        mean_v = p.distance_m / p.duration_s
        assert 0.3 * 14.0 < mean_v < 0.95 * 14.0

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_invariants_any_seed(self, seed):
        p = urban_speed_profile(60.0, 12.0, rng=seed)
        assert np.all(p.v_ms >= 0)
        assert np.all(np.diff(p.s_m) >= -1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            urban_speed_profile(-1.0, 10.0)
        with pytest.raises(ValueError):
            urban_speed_profile(10.0, 10.0, mean_fraction=1.5)
