"""Tests for repro.roads.network and repro.roads.route."""

import networkx as nx
import numpy as np
import pytest

from repro.roads.network import (
    DISTRICTS,
    RoadNetwork,
    RoadNetworkConfig,
    generate_network,
)
from repro.roads.route import Route, build_route, random_route
from repro.roads.types import RoadType


@pytest.fixture(scope="module")
def network() -> RoadNetwork:
    return generate_network(RoadNetworkConfig(blocks_x=6, blocks_y=4), seed=5)


class TestGeneration:
    def test_deterministic(self):
        cfg = RoadNetworkConfig(blocks_x=4, blocks_y=3)
        a = generate_network(cfg, seed=1)
        b = generate_network(cfg, seed=1)
        assert len(a) == len(b)
        pa = a.segments[10].polyline.points
        pb = b.segments[10].polyline.points
        assert np.allclose(pa, pb)

    def test_seed_changes_geometry(self):
        cfg = RoadNetworkConfig(blocks_x=4, blocks_y=3)
        a = generate_network(cfg, seed=1)
        b = generate_network(cfg, seed=2)
        assert not np.allclose(a.segments[0].polyline.points, b.segments[0].polyline.points)

    def test_connected(self, network):
        assert nx.is_connected(network.graph)

    def test_segment_count_scale(self, network):
        # horizontal + vertical + elevated spans + 2 ramps
        cfg = network.config
        expected = (
            (cfg.blocks_y + 1) * cfg.blocks_x
            + (cfg.blocks_x + 1) * cfg.blocks_y
            + cfg.blocks_x
            + 2
        )
        assert len(network) == expected

    def test_all_road_types_present(self, network):
        present = {s.road_type for s in network.segments}
        assert RoadType.UNDER_ELEVATED in present
        assert RoadType.ELEVATED in present
        assert RoadType.SUBURB_2LANE in present
        assert RoadType.URBAN_4LANE in present

    def test_under_elevated_row(self, network):
        # the surface street under the elevated row must be UNDER_ELEVATED
        row = network.config.elevated_row
        unders = network.segments_of_type(RoadType.UNDER_ELEVATED)
        assert unders
        for seg in unders:
            assert seg.u[1] == row and seg.v[1] == row

    def test_districts(self, network):
        for d in DISTRICTS:
            assert network.segments_in_district(d)
        with pytest.raises(ValueError):
            network.segments_in_district("nowhere")

    def test_downtown_has_8lane(self, network):
        downtown = network.segments_in_district("downtown")
        assert any(s.road_type == RoadType.URBAN_8LANE for s in downtown)

    def test_suburb_is_2lane(self, network):
        suburb = [
            s
            for s in network.segments_in_district("suburban")
            if s.road_type not in (RoadType.ELEVATED, RoadType.UNDER_ELEVATED)
        ]
        assert suburb
        assert all(s.road_type == RoadType.SUBURB_2LANE for s in suburb)

    def test_segment_lookup(self, network):
        seg = network.segments[3]
        assert network.segment(seg.segment_id) is seg
        with pytest.raises(KeyError):
            network.segment(10_000)

    def test_edge_segment(self, network):
        seg = network.segments[0]
        assert network.edge_segment(seg.u, seg.v).segment_id == seg.segment_id

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RoadNetworkConfig(blocks_x=1, blocks_y=1)
        with pytest.raises(ValueError):
            RoadNetworkConfig(elevated_row=99)


class TestRoute:
    def test_build_route_length(self, network):
        seg = network.segments[0]
        route = build_route(network, [seg.u, seg.v])
        assert route.length == pytest.approx(seg.length)

    def test_build_route_rejects_nonedge(self, network):
        with pytest.raises(ValueError):
            build_route(network, [(0, 0), (5, 5)])

    def test_locate_and_position(self, network):
        route = random_route(network, min_length_m=1500.0, rng=3)
        s = route.length / 2
        idx, seg, local = route.locate(s)
        assert 0 <= idx < len(route.legs)
        assert 0.0 <= local <= seg.length
        pos = route.position(s)
        assert np.allclose(pos, seg.polyline.position(local))

    def test_locate_many_matches_scalar(self, network):
        route = random_route(network, min_length_m=1500.0, rng=3)
        queries = np.linspace(0.0, route.length, 17)
        idxs, locals_ = route.locate_many(queries)
        for q, i, l in zip(queries, idxs, locals_):
            i2, _, l2 = route.locate(float(q))
            assert i == i2
            assert l == pytest.approx(l2, abs=1e-9)

    def test_reverse_leg_parameterisation(self, network):
        seg = network.segments[0]
        fwd = build_route(network, [seg.u, seg.v])
        rev = build_route(network, [seg.v, seg.u])
        # Reversed traversal starts where the forward one ends.
        assert np.allclose(rev.position(0.0), fwd.position(fwd.length))

    def test_heading_flips_on_reverse(self, network):
        seg = network.segments[0]
        fwd = build_route(network, [seg.u, seg.v])
        rev = build_route(network, [seg.v, seg.u])
        h1 = fwd.heading(seg.length / 2)
        h2 = rev.heading(seg.length / 2)
        delta = np.arctan2(np.sin(h1 - h2), np.cos(h1 - h2))
        assert abs(abs(delta) - np.pi) < 0.3  # opposite directions (curved road)

    def test_random_route_min_length(self, network):
        route = random_route(network, min_length_m=2000.0, rng=7)
        assert route.length >= 2000.0

    def test_random_route_typed(self, network):
        route = random_route(
            network, min_length_m=800.0, road_type=RoadType.URBAN_4LANE, rng=5
        )
        assert all(s.road_type == RoadType.URBAN_4LANE for s in route.segments)

    def test_road_type_at(self, network):
        route = random_route(network, min_length_m=1000.0, rng=11)
        assert route.road_type_at(1.0) == route.segments[0].road_type

    def test_route_needs_legs(self):
        with pytest.raises(ValueError):
            Route([])
