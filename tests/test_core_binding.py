"""Tests for repro.core.binding: time->distance binding + interpolation."""

import numpy as np
import pytest

from repro.core.binding import bind_scan, interpolate_missing
from repro.core.trajectory import GeoTrajectory, GsmTrajectory
from repro.gsm.scanner import RadioGroup, scan_drive
from repro.sensors.deadreckoning import EstimatedTrack


def make_track(duration=60.0, speed=10.0):
    t = np.arange(0.0, duration, 0.1)
    return EstimatedTrack(
        times_s=t, distance_m=speed * t, heading_rad=np.zeros(t.size)
    )


@pytest.fixture(scope="module")
def scan_and_track(small_field, small_plan):
    track = make_track()
    group = RadioGroup(small_plan, n_radios=4)
    scan = scan_drive(
        small_field, lambda t: 10.0 * np.asarray(t), group, 0.0, 55.0, rng=0
    )
    return scan, track


class TestBindScan:
    def test_shapes(self, scan_and_track, small_plan):
        scan, track = scan_and_track
        traj = bind_scan(scan, track, at_time_s=50.0, context_length_m=300.0)
        assert traj.n_channels == small_plan.n_channels
        assert traj.n_marks == 301

    def test_marks_follow_estimated_distance(self, scan_and_track):
        scan, track = scan_and_track
        traj = bind_scan(scan, track, at_time_s=50.0, context_length_m=200.0)
        assert traj.geo.end_distance_m == pytest.approx(500.0, abs=1.0)

    def test_measurements_after_query_excluded(self, scan_and_track):
        scan, track = scan_and_track
        early = bind_scan(scan, track, at_time_s=30.0, context_length_m=200.0)
        assert early.geo.end_distance_m == pytest.approx(300.0, abs=1.0)

    def test_no_interpolation_leaves_gaps(self, small_field, small_plan):
        track = make_track()
        group = RadioGroup(small_plan, n_radios=1)  # slow sweep -> gaps
        scan = scan_drive(
            small_field, lambda t: 10.0 * np.asarray(t), group, 0.0, 55.0, rng=0
        )
        raw = bind_scan(scan, track, at_time_s=50.0, interpolate=False)
        assert raw.missing_fraction > 0.3

    def test_interpolation_fills_gaps(self, small_field, small_plan):
        track = make_track()
        group = RadioGroup(small_plan, n_radios=1)
        scan = scan_drive(
            small_field, lambda t: 10.0 * np.asarray(t), group, 0.0, 55.0, rng=0
        )
        filled = bind_scan(scan, track, at_time_s=50.0, interpolate=True)
        assert filled.missing_fraction == 0.0

    def test_binding_accuracy(self, small_plan):
        # With a perfect track and a noise-free field, the bound power at
        # a mark must match the static field there (up to the slow
        # temporal drift and the +-0.5 m rounding of binding).
        from repro.gsm.field import FieldConfig, make_straight_field
        from repro.roads.types import RoadType

        field = make_straight_field(
            300.0,
            RoadType.URBAN_4LANE,
            plan=small_plan,
            seed=77,
            config=FieldConfig(noise_sigma_db=0.0),
        )
        track = make_track(speed=2.0)
        group = RadioGroup(small_plan, n_radios=4)
        scan = scan_drive(
            field, lambda t: 2.0 * np.asarray(t), group, 0.0, 55.0, rng=0
        )
        traj = bind_scan(scan, track, at_time_s=55.0, interpolate=False)
        static = field.static_rssi(0)
        ch, mark = 3, 50
        bound = traj.power_dbm[ch, mark]
        mark_dist = int(traj.geo.distances_m[mark])
        assert bound == pytest.approx(
            max(static[ch, mark_dist], -110.0), abs=4.0
        )

    def test_averaging_multiple_hits(self):
        # Synthetic: two measurements of the same channel at one mark are
        # averaged.
        from repro.gsm.band import RGSM900
        from repro.gsm.scanner import ScanStream

        plan = RGSM900.subset(np.arange(2))
        scan = ScanStream(
            times_s=np.array([1.0, 2.0, 3.0]),
            channel_indices=np.array([0, 0, 1]),
            radio_ids=np.zeros(3, dtype=int),
            s_true_m=np.zeros(3),
            rssi_dbm=np.array([-80.0, -90.0, -70.0]),
            plan=plan,
        )
        t = np.arange(0.0, 10.0, 0.1)
        track = EstimatedTrack(
            times_s=t, distance_m=np.linspace(0, 5, t.size), heading_rad=np.zeros(t.size)
        )
        traj = bind_scan(scan, track, at_time_s=9.9, spacing_m=1.0, interpolate=False)
        # measurements at t=1,2 -> distances ~0.5,1.0 -> marks 1 rounds
        col_vals = traj.power_dbm[0][~np.isnan(traj.power_dbm[0])]
        assert col_vals.size >= 1


class TestInterpolateMissing:
    def _traj(self, power):
        geo = GeoTrajectory(
            timestamps_s=np.linspace(0, 1, power.shape[1]),
            headings_rad=np.zeros(power.shape[1]),
        )
        return GsmTrajectory(power, np.arange(power.shape[0]), geo)

    def test_linear_interior(self):
        power = np.array([[0.0, np.nan, np.nan, 6.0, 8.0]])
        out = interpolate_missing(self._traj(power))
        assert np.allclose(out.power_dbm[0], [0.0, 2.0, 4.0, 6.0, 8.0])

    def test_edges_take_nearest(self):
        power = np.array([[np.nan, 2.0, 4.0, np.nan, np.nan]])
        out = interpolate_missing(self._traj(power))
        assert np.allclose(out.power_dbm[0], [2.0, 2.0, 4.0, 4.0, 4.0])

    def test_never_measured_channel_stays_nan(self):
        power = np.vstack([np.full(5, np.nan), np.arange(5.0)])
        out = interpolate_missing(self._traj(power))
        assert np.all(np.isnan(out.power_dbm[0]))
        assert np.allclose(out.power_dbm[1], np.arange(5.0))

    def test_complete_passthrough(self):
        power = np.random.default_rng(0).normal(size=(3, 10))
        traj = self._traj(power)
        assert interpolate_missing(traj) is traj

    def test_paper_fig6_example(self):
        # "the RSSI value of channel 7 at location l5 is estimated by
        # averaging the RSSI measures taken at location l3 and l7"
        power = np.full((1, 9), np.nan)
        power[0, 2] = -80.0  # l3
        power[0, 6] = -60.0  # l7
        out = interpolate_missing(self._traj(power))
        assert out.power_dbm[0, 4] == pytest.approx(-70.0)  # l5 midpoint
