"""Tests for repro.obs.openmetrics: exposition rendering and parsing."""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    register_aux_registry,
    unregister_aux_registry,
    use_registry,
)
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    exposition,
    parse,
    render,
    sanitize_name,
)


@pytest.fixture
def reg():
    registry = MetricsRegistry()
    registry.inc("fleet.queries", 7)
    registry.set_gauge("fleet.store.vehicles", 4.0)
    for v in (0.5, 1.5, 9.0):
        registry.observe("fleet.query_latency_s", v, buckets=(1.0, 2.0, 4.0))
    return registry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_name("fleet.query_latency_s") == "fleet_query_latency_s"

    def test_leading_digit_prefixed(self):
        assert sanitize_name("2fast")[0] not in "0123456789"

    def test_already_legal_untouched(self):
        assert sanitize_name("up_time:total") == "up_time:total"


class TestRender:
    def test_counter_total_suffix(self, reg):
        text = render(reg.snapshot())
        assert "# TYPE fleet_queries counter\n" in text
        assert "\nfleet_queries_total 7\n" in text

    def test_gauge_bare_sample(self, reg):
        text = render(reg.snapshot())
        assert "# TYPE fleet_store_vehicles gauge\n" in text
        assert "\nfleet_store_vehicles 4.0\n" in text

    def test_histogram_cumulative_buckets(self, reg):
        text = render(reg.snapshot())
        lines = [l for l in text.split("\n") if "latency" in l]
        assert lines == [
            "# TYPE fleet_query_latency_s histogram",
            'fleet_query_latency_s_bucket{le="1.0"} 1',
            'fleet_query_latency_s_bucket{le="2.0"} 2',
            'fleet_query_latency_s_bucket{le="4.0"} 2',
            'fleet_query_latency_s_bucket{le="+Inf"} 3',
            "fleet_query_latency_s_sum 11.0",
            "fleet_query_latency_s_count 3",
        ]

    def test_ends_with_eof(self, reg):
        assert render(reg.snapshot()).endswith("# EOF\n")

    def test_sorted_by_sanitised_name(self):
        registry = MetricsRegistry()
        registry.inc("z.last")
        registry.inc("a.first")
        text = render(registry.snapshot())
        assert text.index("a_first_total") < text.index("z_last_total")

    def test_nonfinite_gauges_render(self):
        registry = MetricsRegistry()
        registry.set_gauge("g.nan", float("nan"))
        registry.set_gauge("g.inf", float("inf"))
        registry.set_gauge("g.ninf", float("-inf"))
        text = render(registry.snapshot())
        assert "g_nan NaN" in text
        assert "g_inf +Inf" in text
        assert "g_ninf -Inf" in text

    def test_equal_snapshots_render_byte_identical(self, reg):
        other = MetricsRegistry()
        other.merge(reg.snapshot())
        assert render(reg.snapshot()) == render(other.snapshot())

    def test_content_type_is_openmetrics(self):
        assert CONTENT_TYPE.startswith("application/openmetrics-text")


class TestParse:
    def test_round_trip(self, reg):
        families = parse(render(reg.snapshot()))
        assert families["fleet_queries"]["type"] == "counter"
        assert families["fleet_queries"]["samples"] == [
            ("fleet_queries_total", {}, 7.0)
        ]
        hist = families["fleet_query_latency_s"]
        assert hist["type"] == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        ]
        assert buckets[-1] == ("+Inf", 3.0)

    def test_empty_snapshot_is_just_eof(self):
        text = render(MetricsRegistry().snapshot())
        assert text == "# EOF\n"
        assert parse(text) == {}

    def test_missing_eof_rejected(self, reg):
        text = render(reg.snapshot()).replace("# EOF\n", "")
        with pytest.raises(ValueError, match="EOF"):
            parse(text)

    def test_sample_before_type_rejected(self):
        with pytest.raises(ValueError, match="precedes its TYPE"):
            parse("orphan_total 1\n# EOF\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            parse("# TYPE m summary\n# EOF\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse("# TYPE m counter\n# TYPE m counter\n# EOF\n")

    def test_unparseable_value_rejected(self):
        with pytest.raises(ValueError, match="unparseable value"):
            parse("# TYPE m counter\nm_total x\n# EOF\n")

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 4\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse(text)

    def test_malformed_label_rejected(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse('# TYPE h histogram\nh_bucket{le=1} 3\n# EOF\n')

    def test_nan_value_parses(self):
        families = parse("# TYPE g gauge\ng NaN\n# EOF\n")
        assert math.isnan(families["g"]["samples"][0][2])


class TestExposition:
    def test_serves_active_registry(self, reg):
        with use_registry(reg):
            families = parse(exposition())
        assert "fleet_queries" in families

    def test_aux_registries_folded_in(self, reg):
        aux = MetricsRegistry()
        aux.observe("fleet.tick_s", 0.01, buckets=(0.1, 1.0))
        register_aux_registry("test.aux", aux)
        try:
            families = parse(exposition(reg))
            assert "fleet_tick_s" in families
            assert "fleet_queries" in families
            assert "fleet_tick_s" not in parse(
                exposition(reg, include_aux=False)
            )
        finally:
            unregister_aux_registry("test.aux", aux)

    def test_main_registry_wins_collisions(self, reg):
        aux = MetricsRegistry()
        aux.inc("fleet.queries", 999)
        register_aux_registry("test.aux", aux)
        try:
            families = parse(exposition(reg))
            assert families["fleet_queries"]["samples"][0][2] == 7.0
        finally:
            unregister_aux_registry("test.aux", aux)

    def test_unregister_identity_guard(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("aux.survivor")
        register_aux_registry("test.aux", a)
        register_aux_registry("test.aux", b)  # b took the name over
        try:
            unregister_aux_registry("test.aux", a)  # stale close: no-op
            assert "aux_survivor" in parse(exposition(MetricsRegistry()))
        finally:
            unregister_aux_registry("test.aux", b)
        assert "aux_survivor" not in parse(exposition(MetricsRegistry()))
