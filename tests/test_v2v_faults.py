"""Tests for repro.v2v.faults: Gilbert-Elliott loss and fault plans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.v2v.channel import DsrcChannel
from repro.v2v.faults import (
    BAD,
    FaultPlan,
    GilbertElliott,
    apply_arrival_faults,
)
from repro.v2v.wsm import ReassemblyBuffer, fragment_payload, reassemble


class TestGilbertElliott:
    def test_stationary_fraction(self):
        ge = GilbertElliott(p_good_to_bad=0.1, p_bad_to_good=0.4)
        assert ge.stationary_bad_fraction == pytest.approx(0.2)

    def test_average_loss(self):
        ge = GilbertElliott(
            p_good_to_bad=0.1,
            p_bad_to_good=0.4,
            good_loss_prob=0.0,
            bad_loss_prob=0.5,
        )
        assert ge.average_loss_prob == pytest.approx(0.1)

    def test_from_average_loss_matches(self):
        for avg in (0.05, 0.2, 0.5):
            for burst in (0.5, 0.9):
                ge = GilbertElliott.from_average_loss(avg, burst)
                assert ge.average_loss_prob == pytest.approx(avg)
                assert ge.mean_burst_length == pytest.approx(1.0 / (1.0 - burst))
        # Memoryless bursts work for moderate averages too.
        ge = GilbertElliott.from_average_loss(0.2, 0.0)
        assert ge.average_loss_prob == pytest.approx(0.2)

    def test_from_average_loss_unreachable_raises(self):
        # avg=0.5 at burstiness 0 would need p_good_to_bad = 2.0; the
        # constructor must refuse rather than silently miss the mean.
        with pytest.raises(ValueError):
            GilbertElliott.from_average_loss(0.5, 0.0)

    def test_empirical_loss_rate_matches_average(self):
        # Walk the chain; the long-run loss rate must match the design.
        ge = GilbertElliott.from_average_loss(0.25, 0.8)
        rng = np.random.default_rng(0)
        state = ge.initial_state(rng)
        losses = 0
        n = 40_000
        for _ in range(n):
            losses += rng.random() < ge.loss_prob(state)
            state = ge.step(state, rng)
        assert losses / n == pytest.approx(0.25, abs=0.02)

    def test_burstiness_creates_runs(self):
        # Mean-matched chains: high burstiness => longer loss runs.
        def mean_run(burst, seed=1):
            ge = GilbertElliott.from_average_loss(0.2, burst)
            rng = np.random.default_rng(seed)
            state = ge.initial_state(rng)
            lost = []
            for _ in range(20_000):
                lost.append(rng.random() < ge.loss_prob(state))
                state = ge.step(state, rng)
            runs, current = [], 0
            for flag in lost:
                if flag:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            return np.mean(runs)

        assert mean_run(0.9) > 2.0 * mean_run(0.0)

    def test_initial_state_stationary(self):
        ge = GilbertElliott(p_good_to_bad=0.3, p_bad_to_good=0.3)
        rng = np.random.default_rng(2)
        frac_bad = np.mean(
            [ge.initial_state(rng) == BAD for _ in range(5000)]
        )
        assert frac_bad == pytest.approx(0.5, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=0.0)
        with pytest.raises(ValueError):
            GilbertElliott(p_bad_to_good=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(good_loss_prob=0.5, bad_loss_prob=0.2)
        with pytest.raises(ValueError):
            GilbertElliott.from_average_loss(0.8, 0.5)  # above bad_loss_prob
        with pytest.raises(ValueError):
            GilbertElliott.from_average_loss(0.1, 1.0)


class TestFaultPlan:
    def test_blackout_membership(self):
        plan = FaultPlan.blackout(0.5, 1.0)
        assert not plan.in_blackout(0.4)
        assert plan.in_blackout(0.5)
        assert plan.in_blackout(1.4)
        assert not plan.in_blackout(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(blackouts=((1.0, 0.5),))
        with pytest.raises(ValueError):
            FaultPlan(reorder_prob=1.0)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_prob=-0.1)

    def test_duplication_inserts_copies(self):
        packets = fragment_payload(b"\x01" * 5000)
        rng = np.random.default_rng(0)
        out = apply_arrival_faults(
            packets, rng, FaultPlan(duplicate_prob=0.99)
        )
        assert len(out) > len(packets)
        assert {p.index for p in out} == {p.index for p in packets}

    def test_reordering_preserves_multiset(self):
        packets = fragment_payload(b"\x02" * 20_000)
        rng = np.random.default_rng(1)
        out = apply_arrival_faults(packets, rng, FaultPlan(reorder_prob=0.9))
        assert sorted(p.index for p in out) == sorted(p.index for p in packets)
        assert [p.index for p in out] != [p.index for p in packets]


class TestChannelFaultInjection:
    def test_blackout_kills_covered_attempts(self):
        # A blackout longer than the whole retry budget aborts everything.
        ch = DsrcChannel(loss_prob=0.0, rtt_jitter_s=0.0, max_retries=1)
        packets = fragment_payload(b"\x00" * 10_000)
        result = ch.transfer_packets(
            packets, rng=0, faults=FaultPlan.blackout(0.0, 1e9)
        )
        assert not result.delivered
        assert result.arrivals == ()
        assert all(not ok for ok in result.fragment_arrived)

    def test_blackout_window_partial(self):
        # Blackout covering only the start: early fragments burn attempts
        # inside the window; later ones go through untouched.
        ch = DsrcChannel(loss_prob=0.0, rtt_jitter_s=0.0, max_retries=0)
        packets = fragment_payload(b"\x00" * (1392 * 10))
        rtt = ch.effective_rtt_s
        result = ch.transfer_packets(
            packets, rng=0, faults=FaultPlan.blackout(0.0, 3.5 * rtt)
        )
        assert result.fragment_arrived == (False,) * 4 + (True,) * 6

    def test_gilbert_elliott_good_only_is_lossless(self):
        ge = GilbertElliott(
            p_good_to_bad=1e-12, p_bad_to_good=1.0, bad_loss_prob=0.5
        )
        ch = DsrcChannel(loss_prob=0.9, gilbert_elliott=ge)
        result = ch.transfer_bytes(b"\x00" * 50_000, rng=0)
        assert result.delivered
        assert result.retransmissions == 0

    def test_bursty_channel_deterministic(self):
        ge = GilbertElliott.from_average_loss(0.3, 0.7)
        ch = DsrcChannel(gilbert_elliott=ge, max_retries=1)
        a = ch.transfer_bytes(b"\x00" * 30_000, rng=5)
        b = ch.transfer_bytes(b"\x00" * 30_000, rng=5)
        assert a.fragment_arrived == b.fragment_arrived
        assert a.time_s == b.time_s


class TestFaultReassemblyRoundTrip:
    """fragment -> fault plan -> ReassemblyBuffer -> original payload."""

    @given(
        data=st.binary(min_size=1, max_size=30_000),
        dup=st.floats(0.0, 0.9),
        reorder=st.floats(0.0, 0.9),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_lossless_faulty_roundtrip(self, data, dup, reorder, seed):
        # No loss: however mangled the arrival order, reassembly recovers
        # the exact payload.
        ch = DsrcChannel(loss_prob=0.0, rtt_jitter_s=0.0)
        plan = FaultPlan(reorder_prob=reorder, duplicate_prob=dup)
        result = ch.transfer_bytes(data, rng=seed, message_id=7, faults=plan)
        buf = ReassemblyBuffer()
        done = buf.extend(result.arrivals)
        assert done == [(7, data)]
        assert buf.pending_ids() == []

    @given(
        data=st.binary(min_size=1, max_size=30_000),
        loss=st.floats(0.1, 0.8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_lossy_roundtrip_with_manual_repair(self, data, loss, seed):
        # With loss, the buffer's NACK list names exactly the fragments
        # that never arrived; supplying them completes the message.
        ch = DsrcChannel(loss_prob=loss, max_retries=0)
        packets = fragment_payload(data, message_id=3)
        result = ch.transfer_packets(packets, rng=seed)
        buf = ReassemblyBuffer()
        done = buf.extend(result.arrivals)
        lost = [i for i, ok in enumerate(result.fragment_arrived) if not ok]
        if not lost:
            assert done == [(3, data)]
            return
        assert done == []
        if not result.arrivals:
            # Every fragment lost: the buffer never heard of the message,
            # so there is nothing to NACK — only a full resend helps.
            assert buf.missing(3) == []
            assert buf.pending_ids() == []
            repaired = buf.extend(packets)
        else:
            assert buf.missing(3) == lost
            repaired = buf.extend([packets[i] for i in lost])
        assert repaired == [(3, data)]

    @given(st.binary(min_size=1, max_size=20_000), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_buffer_agrees_with_reassemble(self, data, seed):
        # On a pristine fragment set the buffer and the strict
        # reassemble() must produce identical bytes.
        packets = fragment_payload(data, message_id=1)
        rng = np.random.default_rng(seed)
        shuffled = list(packets)
        rng.shuffle(shuffled)
        buf = ReassemblyBuffer()
        done = buf.extend(shuffled)
        assert done == [(1, reassemble(packets))]
