"""Tests for repro.vehicles.idm and repro.vehicles.scenario."""

import numpy as np
import pytest

from repro.vehicles.idm import IdmParameters, follow_leader, idm_acceleration
from repro.vehicles.kinematics import constant_speed_profile, urban_speed_profile
from repro.vehicles.scenario import TwoVehicleScenario, build_following_scenario


class TestIdmAcceleration:
    def test_free_road_accelerates(self):
        p = IdmParameters()
        a = idm_acceleration(v=5.0, gap=500.0, dv=0.0, p=p)
        assert a > 0

    def test_at_desired_speed_no_accel(self):
        p = IdmParameters(desired_speed_ms=14.0)
        a = idm_acceleration(v=14.0, gap=1e6, dv=0.0, p=p)
        assert a == pytest.approx(0.0, abs=0.05)

    def test_small_gap_brakes(self):
        p = IdmParameters()
        a = idm_acceleration(v=10.0, gap=3.0, dv=0.0, p=p)
        assert a < -1.0

    def test_closing_fast_brakes_harder(self):
        p = IdmParameters()
        a_steady = idm_acceleration(v=10.0, gap=30.0, dv=0.0, p=p)
        a_closing = idm_acceleration(v=10.0, gap=30.0, dv=5.0, p=p)
        assert a_closing < a_steady

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IdmParameters(desired_speed_ms=0.0)
        with pytest.raises(ValueError):
            IdmParameters(min_gap_m=-1.0)


class TestFollowLeader:
    def test_never_collides(self):
        leader = urban_speed_profile(300.0, 14.0, rng=0, s0_m=50.0)
        follower = follow_leader(leader, initial_gap_m=20.0)
        gap = leader.s_m - np.asarray(follower.arc_length_at(leader.times_s)) - 4.5
        assert np.all(gap > 0)

    def test_follows_at_safe_distance(self):
        leader = constant_speed_profile(200.0, 12.0, s0_m=100.0)
        follower = follow_leader(leader, initial_gap_m=60.0)
        # IDM equilibrium gap: s*(v) / sqrt(1 - (v/v0)^delta).
        p = IdmParameters()
        s_star = p.min_gap_m + 12.0 * p.time_headway_s
        eq_gap = s_star / np.sqrt(1.0 - (12.0 / p.desired_speed_ms) ** p.delta)
        final_gap = float(
            leader.s_m[-1] - follower.arc_length_at(leader.t1) - 4.5
        )
        assert final_gap == pytest.approx(eq_gap, rel=0.4)

    def test_stops_behind_stopped_leader(self):
        t = np.linspace(0.0, 60.0, 601)
        v = np.where(t < 20.0, 10.0, 0.0)
        s = 100.0 + np.concatenate(
            ([0.0], np.cumsum(0.5 * (v[1:] + v[:-1]) * np.diff(t)))
        )
        from repro.vehicles.kinematics import MotionProfile

        leader = MotionProfile(t, s, v)
        follower = follow_leader(leader, initial_gap_m=30.0)
        assert float(follower.speed_at(59.0)) < 0.2

    def test_validation(self):
        leader = constant_speed_profile(10.0, 5.0, s0_m=50.0)
        with pytest.raises(ValueError):
            follow_leader(leader, initial_gap_m=0.0)
        with pytest.raises(ValueError):
            follow_leader(leader, dt_s=-0.1)


class TestScenario:
    def test_front_leads(self):
        scn = build_following_scenario(duration_s=120.0, seed=0)
        t = np.linspace(scn.t0, scn.t1, 50)
        gaps = np.asarray(scn.true_relative_distance(t))
        assert np.all(gaps > 0)

    def test_true_distance_matches_profiles(self):
        scn = build_following_scenario(duration_s=60.0, seed=1)
        tq = (scn.t0 + scn.t1) / 2
        expected = float(scn.front.arc_length_at(tq)) - float(
            scn.rear.arc_length_at(tq)
        )
        assert float(scn.true_relative_distance(tq)) == pytest.approx(expected)

    def test_lanes(self):
        scn = build_following_scenario(duration_s=30.0, seed=0, rear_lane=3)
        assert scn.front_lane == 0
        assert scn.rear_lane == 3

    def test_max_arc_length(self):
        scn = build_following_scenario(duration_s=60.0, seed=2)
        assert scn.max_arc_length() == pytest.approx(float(scn.front.s_m[-1]))

    def test_deterministic(self):
        a = build_following_scenario(duration_s=60.0, seed=3)
        b = build_following_scenario(duration_s=60.0, seed=3)
        assert np.array_equal(a.front.v_ms, b.front.v_ms)
        assert np.array_equal(a.rear.s_m, b.rear.s_m)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_following_scenario(initial_gap_m=-5.0)
        with pytest.raises(ValueError):
            TwoVehicleScenario(
                front=constant_speed_profile(10.0, 5.0, s0_m=50.0),
                rear=constant_speed_profile(10.0, 5.0),
                front_lane=-1,
            )
