"""Tests for repro.core.trajectory containers."""

import numpy as np
import pytest

from repro.core.trajectory import GeoTrajectory, GsmTrajectory


def make_geo(n=101, spacing=1.0, start=0.0):
    return GeoTrajectory(
        timestamps_s=np.linspace(0.0, 10.0, n),
        headings_rad=np.full(n, 0.1),
        spacing_m=spacing,
        start_distance_m=start,
    )


def make_gsm(n_channels=5, n_marks=101, start=0.0, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    return GsmTrajectory(
        power_dbm=rng.normal(-80, 5, size=(n_channels, n_marks)),
        channel_ids=np.arange(n_channels),
        geo=make_geo(n=n_marks, start=start),
    )


class TestGeoTrajectory:
    def test_properties(self):
        geo = make_geo(n=101, start=50.0)
        assert geo.n_marks == 101
        assert geo.length_m == pytest.approx(100.0)
        assert geo.end_distance_m == pytest.approx(150.0)
        assert geo.distances_m[0] == pytest.approx(50.0)
        assert geo.end_time_s == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeoTrajectory(np.array([0.0]), np.array([0.0]))
        with pytest.raises(ValueError, match="non-decreasing"):
            GeoTrajectory(np.array([1.0, 0.0]), np.zeros(2))
        with pytest.raises(ValueError):
            GeoTrajectory(np.array([0.0, 1.0]), np.zeros(2), spacing_m=0.0)
        with pytest.raises(ValueError):
            GeoTrajectory(np.array([0.0, 1.0]), np.zeros(3))

    def test_tail(self):
        geo = make_geo(n=101)
        tail = geo.tail(20.0)
        assert tail.n_marks == 21
        assert tail.end_distance_m == pytest.approx(geo.end_distance_m)
        assert tail.start_distance_m == pytest.approx(80.0)
        assert tail.timestamps_s[-1] == geo.timestamps_s[-1]

    def test_tail_longer_than_available(self):
        geo = make_geo(n=11)
        tail = geo.tail(500.0)
        assert tail.n_marks == 11

    def test_tail_too_short_rejected(self):
        with pytest.raises(ValueError):
            make_geo().tail(0.0)

    def test_slice_marks(self):
        geo = make_geo(n=101, start=10.0)
        part = geo.slice_marks(10, 21)
        assert part.n_marks == 11
        assert part.start_distance_m == pytest.approx(20.0)

    def test_slice_too_small(self):
        with pytest.raises(ValueError):
            make_geo().slice_marks(5, 6)


class TestGsmTrajectory:
    def test_properties(self):
        traj = make_gsm(n_channels=7, n_marks=51)
        assert traj.n_channels == 7
        assert traj.n_marks == 51
        assert traj.length_m == pytest.approx(50.0)
        assert traj.missing_fraction == 0.0

    def test_validation_alignment(self):
        geo = make_geo(n=10)
        with pytest.raises(ValueError):
            GsmTrajectory(np.zeros((3, 9)), np.arange(3), geo)
        with pytest.raises(ValueError):
            GsmTrajectory(np.zeros((3, 10)), np.arange(4), geo)
        with pytest.raises(ValueError, match="duplicate"):
            GsmTrajectory(np.zeros((2, 10)), np.array([1, 1]), geo)

    def test_missing_fraction(self):
        traj = make_gsm(n_channels=2, n_marks=10)
        power = traj.power_dbm.copy()
        power[0, :5] = np.nan
        t2 = GsmTrajectory(power, traj.channel_ids, traj.geo)
        assert t2.missing_fraction == pytest.approx(0.25)

    def test_tail_slices_power(self):
        traj = make_gsm(n_marks=101)
        tail = traj.tail(10.0)
        assert tail.n_marks == 11
        assert np.array_equal(tail.power_dbm, traj.power_dbm[:, -11:])

    def test_select_channels(self):
        traj = make_gsm(n_channels=6)
        sub = traj.select_channels(np.array([4, 1]))
        assert np.array_equal(sub.channel_ids, [4, 1])
        assert np.array_equal(sub.power_dbm[0], traj.power_dbm[4])
        assert np.array_equal(sub.power_dbm[1], traj.power_dbm[1])

    def test_select_unknown_channel(self):
        with pytest.raises(KeyError):
            make_gsm().select_channels(np.array([99]))

    def test_strongest_channels(self):
        geo = make_geo(n=10)
        power = np.array(
            [np.full(10, -100.0), np.full(10, -60.0), np.full(10, -80.0)]
        )
        traj = GsmTrajectory(power, np.array([10, 20, 30]), geo)
        assert np.array_equal(traj.strongest_channels(2), [20, 30])

    def test_strongest_ignores_all_nan_channels(self):
        geo = make_geo(n=10)
        power = np.vstack([np.full(10, np.nan), np.full(10, -70.0)])
        traj = GsmTrajectory(power, np.array([1, 2]), geo)
        assert np.array_equal(traj.strongest_channels(1), [2])

    def test_strongest_validation(self):
        with pytest.raises(ValueError):
            make_gsm(n_channels=3).strongest_channels(0)
        with pytest.raises(ValueError):
            make_gsm(n_channels=3).strongest_channels(4)

    def test_common_channels(self):
        geo = make_geo(n=10)
        a = GsmTrajectory(np.zeros((3, 10)), np.array([1, 2, 3]), geo)
        b = GsmTrajectory(np.zeros((3, 10)), np.array([2, 3, 4]), geo)
        assert np.array_equal(a.common_channels(b), [2, 3])

    def test_slice_marks(self):
        traj = make_gsm(n_marks=50)
        part = traj.slice_marks(10, 30)
        assert part.n_marks == 20
        assert np.array_equal(part.power_dbm, traj.power_dbm[:, 10:30])
