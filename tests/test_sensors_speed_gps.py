"""Tests for repro.sensors.speed and repro.sensors.gps."""

import numpy as np
import pytest

from repro.roads.types import RoadType
from repro.sensors.gps import GpsModel, GpsTrack
from repro.sensors.speed import ObdSpeedSensor, WheelEncoder
from repro.vehicles.kinematics import constant_speed_profile, urban_speed_profile


class TestObdSensor:
    def test_report_rate(self):
        motion = constant_speed_profile(60.0, 10.0)
        stream = ObdSpeedSensor(rate_hz=2.0).sample(motion, rng=0)
        assert len(stream.times_s) == pytest.approx(120, abs=2)

    def test_quantization(self):
        motion = constant_speed_profile(20.0, 10.0)
        stream = ObdSpeedSensor(scale_error_range=(0.0, 0.0)).sample(motion, rng=0)
        q = 1.0 / 3.6
        assert np.allclose(stream.speed_ms, np.round(stream.speed_ms / q) * q)

    def test_scale_bias_over_reads(self):
        motion = constant_speed_profile(120.0, 10.0)
        stream = ObdSpeedSensor(scale_error_range=(0.02, 0.02)).sample(motion, rng=0)
        assert np.mean(stream.speed_ms) == pytest.approx(10.2, abs=0.1)

    def test_integrate_distance(self):
        motion = constant_speed_profile(100.0, 10.0)
        stream = ObdSpeedSensor(scale_error_range=(0.0, 0.0)).sample(motion, rng=0)
        _, d = stream.integrate_distance()
        assert d[-1] == pytest.approx(motion.distance_m, rel=0.03)

    def test_speed_at_zero_order_hold(self):
        motion = constant_speed_profile(10.0, 10.0)
        stream = ObdSpeedSensor().sample(motion, rng=0)
        t_mid = (stream.times_s[0] + stream.times_s[1]) / 2
        assert float(stream.speed_at(t_mid)) == float(stream.speed_ms[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            ObdSpeedSensor(rate_hz=0.0)
        with pytest.raises(ValueError):
            ObdSpeedSensor(scale_error_range=(0.1, 0.0))


class TestWheelEncoder:
    def test_tick_count(self):
        motion = constant_speed_profile(100.0, 10.0)  # 1000 m
        enc = WheelEncoder(circumference_m=2.0, calibration_error=0.0, jitter_s=0.0)
        ticks = enc.sample(motion, rng=0)
        assert len(ticks.tick_times_s) == 500

    def test_distance_recovery(self):
        motion = urban_speed_profile(200.0, 14.0, rng=0)
        enc = WheelEncoder(calibration_error=0.0, jitter_s=0.0)
        ticks = enc.sample(motion, rng=0)
        est = float(ticks.distance_at(motion.t1))
        assert est == pytest.approx(motion.distance_m, abs=2 * enc.circumference_m)

    def test_calibration_error_scales_distance(self):
        motion = constant_speed_profile(100.0, 10.0)
        enc = WheelEncoder(calibration_error=0.01, jitter_s=0.0)
        ticks = enc.sample(motion, rng=0)
        rel = abs(ticks.total_distance_m - motion.distance_m) / motion.distance_m
        assert rel == pytest.approx(0.01, abs=0.003)

    def test_distance_monotone(self):
        motion = urban_speed_profile(120.0, 14.0, rng=1)
        ticks = WheelEncoder().sample(motion, rng=1)
        t = np.linspace(motion.t0, motion.t1, 200)
        d = np.asarray(ticks.distance_at(t))
        assert np.all(np.diff(d) >= -1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            WheelEncoder(circumference_m=0.0)
        with pytest.raises(ValueError):
            WheelEncoder(jitter_s=-1.0)


class TestGpsModel:
    def _truth(self, duration=120.0):
        t = np.arange(0.0, duration, 0.1)
        pos = np.stack([10.0 * t, np.zeros_like(t)], axis=1)
        return t, pos

    def test_fix_rate(self):
        t, pos = self._truth()
        track = GpsModel.for_road(RoadType.SUBURB_2LANE).sample(t, pos, rng=0)
        assert len(track) == pytest.approx(120, abs=2)

    def test_error_scale_by_environment(self):
        t, pos = self._truth(600.0)
        errs = {}
        for rt in (RoadType.SUBURB_2LANE, RoadType.UNDER_ELEVATED):
            track = GpsModel.for_road(rt).sample(t, pos, rng=1)
            valid = track.valid
            true_at_fix = np.stack(
                [np.interp(track.times_s, t, pos[:, 0]), np.zeros_like(track.times_s)],
                axis=1,
            )
            errs[rt] = np.nanmean(
                np.linalg.norm(track.positions[valid] - true_at_fix[valid], axis=1)
            )
        assert errs[RoadType.UNDER_ELEVATED] > 2 * errs[RoadType.SUBURB_2LANE]

    def test_outages_under_elevated(self):
        t, pos = self._truth(600.0)
        track = GpsModel.for_road(RoadType.UNDER_ELEVATED).sample(t, pos, rng=2)
        assert track.availability < 1.0
        open_track = GpsModel.for_road(RoadType.SUBURB_2LANE).sample(t, pos, rng=2)
        assert open_track.availability == 1.0

    def test_invalid_positions_nan(self):
        t, pos = self._truth(600.0)
        track = GpsModel.for_road(RoadType.UNDER_ELEVATED).sample(t, pos, rng=3)
        if not np.all(track.valid):
            assert np.all(np.isnan(track.positions[~track.valid]))

    def test_position_at_returns_latest_valid(self):
        t, pos = self._truth()
        track = GpsModel.for_road(RoadType.SUBURB_2LANE).sample(t, pos, rng=0)
        p = track.position_at(50.0)
        assert p is not None and p.shape == (2,)
        assert track.position_at(-10.0) is None

    def test_common_bias_correlates_receivers(self):
        t, pos = self._truth(900.0)
        model = GpsModel.for_road(RoadType.URBAN_4LANE, common_mode_fraction=0.95)
        shared = model.common_bias_track(t[0], t[-1], rng=10)
        a = model.sample(t, pos, rng=11, common_bias=shared)
        b = model.sample(t, pos, rng=12, common_bias=shared)
        true_x = np.interp(a.times_s, t, pos[:, 0])
        ok = a.valid & b.valid
        ea = a.positions[ok, 0] - true_x[ok]
        eb = b.positions[ok, 0] - true_x[ok]
        r = np.corrcoef(ea, eb)[0, 1]
        assert r > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            GpsModel.for_road(RoadType.URBAN_4LANE, rate_hz=0.0)
        with pytest.raises(ValueError):
            GpsModel.for_road(RoadType.URBAN_4LANE, common_mode_fraction=2.0)
        t, pos = self._truth()
        model = GpsModel.for_road(RoadType.URBAN_4LANE)
        with pytest.raises(ValueError):
            model.sample(t, pos[:, :1], rng=0)

    def test_track_validation(self):
        with pytest.raises(ValueError):
            GpsTrack(
                times_s=np.zeros(3),
                positions=np.zeros((2, 2)),
                valid=np.ones(3, dtype=bool),
            )
