"""Tests for repro.obs: metrics registry, span tracing, logging config."""

import io
import json
import logging
import math
import pickle

import pytest

from repro import obs
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    configure_logging,
    get_logger,
    get_recorder,
    get_registry,
    trace,
    use_recorder,
    use_registry,
)


class TestCounters:
    def test_inc_and_read(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("never") == 0

    def test_module_helpers_hit_active_registry(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            obs.inc("x")
            obs.set_gauge("g", 2.0)
            obs.observe("h", 0.5, buckets=(1.0,))
        assert reg.counter("x") == 1
        assert reg.gauge("g") == 2.0
        assert reg.snapshot()["histograms"]["h"]["count"] == 1

    def test_use_registry_nests_and_restores(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            obs.inc("k")
            with use_registry(inner):
                assert get_registry() is inner
                obs.inc("k")
            assert get_registry() is outer
        assert outer.counter("k") == 1
        assert inner.counter("k") == 1

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.1)
        reg.clear()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestHistograms:
    def test_bucket_placement_le_semantics(self):
        reg = MetricsRegistry()
        edges = (1.0, 2.0, 4.0)
        for v in (0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 100.0):
            reg.observe("h", v, buckets=edges)
        h = reg.snapshot()["histograms"]["h"]
        # value <= edge buckets: [<=1, <=2, <=4, overflow]
        assert h["counts"] == [2, 2, 2, 1]
        assert h["count"] == 7
        assert h["min"] == 0.5
        assert h["max"] == 100.0
        assert h["sum"] == pytest.approx(112.9)

    def test_conflicting_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.1, buckets=(1.0, 2.0))
        reg.observe("h", 0.2)  # None re-uses existing edges
        reg.observe("h", 0.3, buckets=(1.0, 2.0))  # identical ok
        with pytest.raises(ValueError, match="different buckets"):
            reg.observe("h", 0.4, buckets=(1.0, 3.0))

    def test_invalid_edges_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.observe("h", 0.1, buckets=())
        with pytest.raises(ValueError):
            reg.observe("h2", 0.1, buckets=(2.0, 1.0))

    def test_default_buckets_are_time_buckets(self):
        reg = MetricsRegistry()
        reg.observe("h", 1e-3)
        assert tuple(reg.snapshot()["histograms"]["h"]["edges"]) == (
            obs.DEFAULT_TIME_BUCKETS_S
        )


class TestQuantiles:
    @staticmethod
    def _hist(values, edges=(1.0, 2.0, 4.0)):
        reg = MetricsRegistry()
        for v in values:
            reg.observe("h", v, buckets=edges)
        return reg

    def test_absent_or_empty_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.quantile("never", 0.5))

    def test_q_validation(self):
        reg = self._hist([0.5])
        with pytest.raises(ValueError, match="q must be"):
            reg.quantile("h", 1.5)
        with pytest.raises(ValueError, match="q must be"):
            reg.quantile("h", -0.1)

    def test_extremes_hit_observed_min_max(self):
        reg = self._hist([0.5, 1.5, 3.0, 10.0])
        assert reg.quantile("h", 0.0) == 0.5
        assert reg.quantile("h", 1.0) == 10.0

    def test_linear_interpolation_within_buckets(self):
        # counts [1, 1, 1, 1] over buckets [min..1], (1..2], (2..4], (4..max]
        reg = self._hist([0.5, 1.5, 3.0, 10.0])
        assert reg.quantile("h", 0.25) == pytest.approx(1.0)
        assert reg.quantile("h", 0.5) == pytest.approx(2.0)
        assert reg.quantile("h", 0.75) == pytest.approx(4.0)
        # overflow bucket interpolates up to the observed max
        assert reg.quantile("h", 0.875) == pytest.approx(7.0)

    def test_monotone_in_q(self):
        reg = self._hist([0.2, 0.9, 1.1, 1.9, 2.5, 3.5, 5.0, 9.0])
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        values = [reg.quantile("h", q) for q in qs]
        assert values == sorted(values)
        assert all(0.2 <= v <= 9.0 for v in values)

    def test_single_value_collapses(self):
        reg = self._hist([1.7])
        for q in (0.0, 0.5, 1.0):
            assert reg.quantile("h", q) == pytest.approx(1.7)

    def test_quantile_after_merge_sees_combined_distribution(self):
        a = self._hist([0.5, 0.8])
        b = self._hist([3.0, 10.0])
        a.merge(b.snapshot())
        assert a.quantile("h", 0.0) == 0.5
        assert a.quantile("h", 1.0) == 10.0
        assert a.quantile("h", 0.5) == pytest.approx(1.0)

    def test_histogram_names(self):
        reg = MetricsRegistry()
        reg.observe("b", 1.0)
        reg.observe("a", 1.0)
        assert reg.histogram_names() == ["b", "a"]  # creation order


class TestSnapshotMerge:
    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        a.observe("h", 0.5, buckets=(1.0, 2.0))
        b.inc("c", 3)
        b.inc("only_b")
        b.observe("h", 1.5, buckets=(1.0, 2.0))
        b.set_gauge("g", 9.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"c": 5, "only_b": 1}
        assert snap["gauges"] == {"g": 9.0}
        h = snap["histograms"]["h"]
        assert h["counts"] == [1, 1, 0]
        assert h["count"] == 2
        assert h["min"] == 0.5 and h["max"] == 1.5

    def test_merge_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 2.0)
        a.merge(b.snapshot())
        assert a.gauge("g") == 2.0

    def test_merge_rejects_mismatched_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0,))
        b.observe("h", 0.5, buckets=(2.0,))
        with pytest.raises(ValueError, match="bucket edges differ"):
            a.merge(b.snapshot())

    def test_merge_rejects_mismatched_edge_counts(self):
        # Different edge *lengths* must raise too — a silent zip would
        # truncate the longer counts list and lose observations.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0, 2.0))
        b.observe("h", 0.5, buckets=(1.0, 2.0, 4.0))
        with pytest.raises(ValueError, match="bucket edges differ"):
            a.merge(b.snapshot())
        c = MetricsRegistry()
        c.observe("h", 0.5, buckets=(1.0,))
        with pytest.raises(ValueError, match="bucket edges differ"):
            a.merge(c.snapshot())

    def test_merge_into_empty_equals_source(self):
        src = MetricsRegistry()
        src.inc("c", 7)
        src.observe("h", 0.2, buckets=(1.0,))
        src.set_gauge("g", 4.0)
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert pickle.dumps(dst.snapshot()) == pickle.dumps(src.snapshot())

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 0.2)
        reg.set_gauge("g", 1.0)
        parsed = json.loads(json.dumps(reg.snapshot()))
        assert parsed["counters"]["c"] == 1

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        reg.inc("c")
        assert snap["counters"]["c"] == 1


class TestInvariantSnapshot:
    def test_strips_timing_and_placement_series(self):
        from repro.obs import invariant_snapshot

        reg = MetricsRegistry()
        reg.inc("fleet.queries", 3)
        reg.inc("runtime.shared.publish")  # transport: varies with jobs
        reg.inc("engine.cache.reduction.hit", 2)  # placement: varies too
        reg.set_gauge("campaign.drives", 2.0)
        reg.observe("span.engine.estimate", 0.01)  # wall clock
        reg.observe("fleet.error_m", 1.5, buckets=(1.0, 2.0))
        view = invariant_snapshot(reg.snapshot())
        assert view["counters"] == {"fleet.queries": 3}
        assert view["gauges"] == {"campaign.drives": 2.0}
        assert list(view["histograms"]) == ["fleet.error_m"]
        assert view["histograms"]["fleet.error_m"]["count"] == 1

    def test_is_a_plain_copy(self):
        from repro.obs import invariant_snapshot

        reg = MetricsRegistry()
        reg.inc("kept")
        reg.observe("kept_h", 0.2, buckets=(1.0,))
        snap = reg.snapshot()
        view = invariant_snapshot(snap)
        view["counters"]["kept"] = 99
        view["histograms"]["kept_h"]["counts"][0] = 99
        assert snap["counters"]["kept"] == 1
        assert snap["histograms"]["kept_h"]["counts"][0] == 1
        assert json.loads(json.dumps(view))  # still JSON-serialisable


class TestTracing:
    def test_span_nesting_depth_and_parent(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("outer"):
                with trace("inner"):
                    pass
                with trace("inner2"):
                    pass
        names = [s.name for s in rec.spans]
        assert names == ["inner", "inner2", "outer"]  # completion order
        by_name = {s.name: s for s in rec.spans}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["inner"].depth == 1
        assert by_name["inner"].parent == "outer"
        assert by_name["inner2"].parent == "outer"

    def test_span_timings_nonnegative_and_nested_bounded(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("outer"):
                with trace("inner"):
                    sum(range(1000))
        by_name = {s.name: s for s in rec.spans}
        assert by_name["inner"].wall_s >= 0.0
        assert by_name["inner"].cpu_s >= 0.0
        assert by_name["outer"].wall_s >= by_name["inner"].wall_s

    def test_span_feeds_duration_histogram(self):
        reg = MetricsRegistry()
        with use_registry(reg), use_recorder(SpanRecorder()):
            with trace("stage"):
                pass
        hist = reg.snapshot()["histograms"]["span.stage"]
        assert hist["count"] == 1
        assert hist["sum"] >= 0.0

    def test_ring_buffer_evicts_oldest(self):
        rec = SpanRecorder(capacity=3)
        with use_recorder(rec), use_registry(MetricsRegistry()):
            for i in range(5):
                with trace(f"s{i}"):
                    pass
        assert [s.name for s in rec.spans] == ["s2", "s3", "s4"]
        assert rec.capacity == 3

    def test_ring_buffer_multi_wrap_keeps_completion_order(self):
        # Wrap the ring several times over; the survivors must be the
        # newest `capacity` spans, still oldest-first, with start times
        # monotone (completion order == recording order for flat spans).
        rec = SpanRecorder(capacity=4)
        with use_recorder(rec), use_registry(MetricsRegistry()):
            for i in range(19):
                with trace(f"s{i}"):
                    pass
        assert [s.name for s in rec.spans] == ["s15", "s16", "s17", "s18"]
        starts = [s.start_s for s in rec.spans]
        assert starts == sorted(starts)

    def test_ring_buffer_wrap_with_nesting(self):
        # Children complete before parents; the wrapped ring keeps that
        # completion order, not call order.
        rec = SpanRecorder(capacity=3)
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("old"):
                pass
            with trace("outer"):
                with trace("a"):
                    pass
                with trace("b"):
                    pass
        assert [s.name for s in rec.spans] == ["a", "b", "outer"]
        assert [s.depth for s in rec.spans] == [1, 1, 0]

    def test_exception_still_records_span(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with pytest.raises(RuntimeError):
                with trace("boom"):
                    raise RuntimeError("x")
        assert [s.name for s in rec.spans] == ["boom"]
        assert rec.active == ()

    def test_active_stack_visible_inside(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("a"):
                with trace("b"):
                    assert rec.active == ("a", "b")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_default_recorder_exists(self):
        assert isinstance(get_recorder(), SpanRecorder)


class TestLogging:
    def test_silent_by_default(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("v2v.exchange").name == "repro.v2v.exchange"
        assert get_logger("repro.core.tracking").name == "repro.core.tracking"

    def test_configure_logging_writes_and_is_idempotent(self):
        stream = io.StringIO()
        root = configure_logging("DEBUG", stream=stream)
        try:
            configure_logging("DEBUG", stream=stream)  # must not duplicate
            get_logger("test").debug("event=%s value=%d", "hello", 3)
            out = stream.getvalue()
            assert out.count("event=hello value=3") == 1
            assert "DEBUG" in out
        finally:
            for handler in list(root.handlers):
                if not isinstance(handler, logging.NullHandler):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("NOISY")
