"""Tests for repro.obs: metrics registry, span tracing, logging config."""

import io
import json
import logging
import math
import pickle

import pytest

from repro import obs
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    configure_logging,
    get_logger,
    get_recorder,
    get_registry,
    trace,
    use_recorder,
    use_registry,
)


class TestCounters:
    def test_inc_and_read(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("never") == 0

    def test_module_helpers_hit_active_registry(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            obs.inc("x")
            obs.set_gauge("g", 2.0)
            obs.observe("h", 0.5, buckets=(1.0,))
        assert reg.counter("x") == 1
        assert reg.gauge("g") == 2.0
        assert reg.snapshot()["histograms"]["h"]["count"] == 1

    def test_use_registry_nests_and_restores(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            obs.inc("k")
            with use_registry(inner):
                assert get_registry() is inner
                obs.inc("k")
            assert get_registry() is outer
        assert outer.counter("k") == 1
        assert inner.counter("k") == 1

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.1)
        reg.clear()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestHistograms:
    def test_bucket_placement_le_semantics(self):
        reg = MetricsRegistry()
        edges = (1.0, 2.0, 4.0)
        for v in (0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 100.0):
            reg.observe("h", v, buckets=edges)
        h = reg.snapshot()["histograms"]["h"]
        # value <= edge buckets: [<=1, <=2, <=4, overflow]
        assert h["counts"] == [2, 2, 2, 1]
        assert h["count"] == 7
        assert h["min"] == 0.5
        assert h["max"] == 100.0
        assert h["sum"] == pytest.approx(112.9)

    def test_conflicting_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.1, buckets=(1.0, 2.0))
        reg.observe("h", 0.2)  # None re-uses existing edges
        reg.observe("h", 0.3, buckets=(1.0, 2.0))  # identical ok
        with pytest.raises(ValueError, match="different buckets"):
            reg.observe("h", 0.4, buckets=(1.0, 3.0))

    def test_invalid_edges_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.observe("h", 0.1, buckets=())
        with pytest.raises(ValueError):
            reg.observe("h2", 0.1, buckets=(2.0, 1.0))

    def test_default_buckets_are_time_buckets(self):
        reg = MetricsRegistry()
        reg.observe("h", 1e-3)
        assert tuple(reg.snapshot()["histograms"]["h"]["edges"]) == (
            obs.DEFAULT_TIME_BUCKETS_S
        )


class TestQuantiles:
    @staticmethod
    def _hist(values, edges=(1.0, 2.0, 4.0)):
        reg = MetricsRegistry()
        for v in values:
            reg.observe("h", v, buckets=edges)
        return reg

    def test_absent_or_empty_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.quantile("never", 0.5))

    def test_q_validation(self):
        reg = self._hist([0.5])
        with pytest.raises(ValueError, match="q must be"):
            reg.quantile("h", 1.5)
        with pytest.raises(ValueError, match="q must be"):
            reg.quantile("h", -0.1)

    def test_extremes_hit_observed_min_max(self):
        reg = self._hist([0.5, 1.5, 3.0, 10.0])
        assert reg.quantile("h", 0.0) == 0.5
        assert reg.quantile("h", 1.0) == 10.0

    def test_linear_interpolation_within_buckets(self):
        # counts [1, 1, 1, 1] over buckets [min..1], (1..2], (2..4], (4..max]
        reg = self._hist([0.5, 1.5, 3.0, 10.0])
        assert reg.quantile("h", 0.25) == pytest.approx(1.0)
        assert reg.quantile("h", 0.5) == pytest.approx(2.0)
        assert reg.quantile("h", 0.75) == pytest.approx(4.0)
        # overflow bucket interpolates up to the observed max
        assert reg.quantile("h", 0.875) == pytest.approx(7.0)

    def test_monotone_in_q(self):
        reg = self._hist([0.2, 0.9, 1.1, 1.9, 2.5, 3.5, 5.0, 9.0])
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        values = [reg.quantile("h", q) for q in qs]
        assert values == sorted(values)
        assert all(0.2 <= v <= 9.0 for v in values)

    def test_single_value_collapses(self):
        reg = self._hist([1.7])
        for q in (0.0, 0.5, 1.0):
            assert reg.quantile("h", q) == pytest.approx(1.7)

    def test_quantile_after_merge_sees_combined_distribution(self):
        a = self._hist([0.5, 0.8])
        b = self._hist([3.0, 10.0])
        a.merge(b.snapshot())
        assert a.quantile("h", 0.0) == 0.5
        assert a.quantile("h", 1.0) == 10.0
        assert a.quantile("h", 0.5) == pytest.approx(1.0)

    def test_histogram_names(self):
        reg = MetricsRegistry()
        reg.observe("b", 1.0)
        reg.observe("a", 1.0)
        assert reg.histogram_names() == ["b", "a"]  # creation order

    def test_empty_detail_is_flagged(self):
        from repro.obs import QuantileEstimate

        reg = MetricsRegistry()
        est = reg.quantile_detail("never", 0.5)
        assert isinstance(est, QuantileEstimate)
        assert est.empty and not est.overflow_only
        assert math.isnan(est.value)

    def test_overflow_only_clamps_and_flags(self):
        # Every observation past the last edge: the interior buckets
        # carry no rank information, so the estimate interpolates the
        # observed range, clamps to it, and says so.
        reg = self._hist([10.0, 20.0, 40.0])  # edges end at 4.0
        est = reg.quantile_detail("h", 0.5)
        assert est.overflow_only and not est.empty
        assert 10.0 <= est.value <= 40.0
        assert est.value == pytest.approx(25.0)
        assert reg.quantile_detail("h", 0.0).value == 10.0
        assert reg.quantile_detail("h", 1.0).value == 40.0
        # The plain quantile() view still returns the clamped value.
        assert reg.quantile("h", 1.0) == 40.0

    def test_normal_estimate_carries_no_flags(self):
        est = self._hist([0.5, 1.5, 3.0]).quantile_detail("h", 0.5)
        assert not est.empty and not est.overflow_only

    def test_snapshot_helpers_match_registry(self):
        from repro.obs import quantile_detail, quantile_from

        reg = self._hist([0.5, 1.5, 3.0, 10.0])
        data = reg.snapshot()["histograms"]["h"]
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert quantile_from(data, q) == reg.quantile("h", q)
        assert quantile_detail(data, 0.5) == reg.quantile_detail("h", 0.5)
        with pytest.raises(ValueError, match="q must be"):
            quantile_from(data, 1.5)


class TestSnapshotMerge:
    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        a.observe("h", 0.5, buckets=(1.0, 2.0))
        b.inc("c", 3)
        b.inc("only_b")
        b.observe("h", 1.5, buckets=(1.0, 2.0))
        b.set_gauge("g", 9.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"c": 5, "only_b": 1}
        assert snap["gauges"] == {"g": 9.0}
        h = snap["histograms"]["h"]
        assert h["counts"] == [1, 1, 0]
        assert h["count"] == 2
        assert h["min"] == 0.5 and h["max"] == 1.5

    def test_merge_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 2.0)
        a.merge(b.snapshot())
        assert a.gauge("g") == 2.0

    def test_merge_rejects_mismatched_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0,))
        b.observe("h", 0.5, buckets=(2.0,))
        with pytest.raises(ValueError, match="bucket edges differ"):
            a.merge(b.snapshot())

    def test_merge_rejects_mismatched_edge_counts(self):
        # Different edge *lengths* must raise too — a silent zip would
        # truncate the longer counts list and lose observations.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0, 2.0))
        b.observe("h", 0.5, buckets=(1.0, 2.0, 4.0))
        with pytest.raises(ValueError, match="bucket edges differ"):
            a.merge(b.snapshot())
        c = MetricsRegistry()
        c.observe("h", 0.5, buckets=(1.0,))
        with pytest.raises(ValueError, match="bucket edges differ"):
            a.merge(c.snapshot())

    def test_merge_into_empty_equals_source(self):
        src = MetricsRegistry()
        src.inc("c", 7)
        src.observe("h", 0.2, buckets=(1.0,))
        src.set_gauge("g", 4.0)
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert pickle.dumps(dst.snapshot()) == pickle.dumps(src.snapshot())

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 0.2)
        reg.set_gauge("g", 1.0)
        parsed = json.loads(json.dumps(reg.snapshot()))
        assert parsed["counters"]["c"] == 1

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        reg.inc("c")
        assert snap["counters"]["c"] == 1


class TestInvariantSnapshot:
    def test_strips_timing_and_placement_series(self):
        from repro.obs import invariant_snapshot

        reg = MetricsRegistry()
        reg.inc("fleet.queries", 3)
        reg.inc("runtime.shared.publish")  # transport: varies with jobs
        reg.inc("engine.cache.reduction.hit", 2)  # placement: varies too
        reg.set_gauge("campaign.drives", 2.0)
        reg.observe("span.engine.estimate", 0.01)  # wall clock
        reg.observe("fleet.error_m", 1.5, buckets=(1.0, 2.0))
        view = invariant_snapshot(reg.snapshot())
        assert view["counters"] == {"fleet.queries": 3}
        assert view["gauges"] == {"campaign.drives": 2.0}
        assert list(view["histograms"]) == ["fleet.error_m"]
        assert view["histograms"]["fleet.error_m"]["count"] == 1

    def test_is_a_plain_copy(self):
        from repro.obs import invariant_snapshot

        reg = MetricsRegistry()
        reg.inc("kept")
        reg.observe("kept_h", 0.2, buckets=(1.0,))
        snap = reg.snapshot()
        view = invariant_snapshot(snap)
        view["counters"]["kept"] = 99
        view["histograms"]["kept_h"]["counts"][0] = 99
        assert snap["counters"]["kept"] == 1
        assert snap["histograms"]["kept_h"]["counts"][0] == 1
        assert json.loads(json.dumps(view))  # still JSON-serialisable

    def test_placement_series_included_when_requested(self):
        # The default filter strips placement counters; passing explicit
        # (empty) prefix lists re-includes them for callers that want
        # the full picture and accept the jobs-dependence.
        from repro.obs import invariant_snapshot

        reg = MetricsRegistry()
        reg.inc("fleet.queries", 3)
        reg.inc("runtime.shared.publish", 2)
        reg.inc("engine.cache.reduction.miss")
        reg.observe("span.engine.estimate", 0.01)
        snap = reg.snapshot()
        default = invariant_snapshot(snap)
        assert set(default["counters"]) == {"fleet.queries"}
        full = invariant_snapshot(
            snap, exclude_histogram_prefixes=(), exclude_counter_prefixes=()
        )
        assert set(full["counters"]) == {
            "fleet.queries",
            "runtime.shared.publish",
            "engine.cache.reduction.miss",
        }
        assert "span.engine.estimate" in full["histograms"]


class TestTracing:
    def test_span_nesting_depth_and_parent(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("outer"):
                with trace("inner"):
                    pass
                with trace("inner2"):
                    pass
        names = [s.name for s in rec.spans]
        assert names == ["inner", "inner2", "outer"]  # completion order
        by_name = {s.name: s for s in rec.spans}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["inner"].depth == 1
        assert by_name["inner"].parent == "outer"
        assert by_name["inner2"].parent == "outer"

    def test_span_timings_nonnegative_and_nested_bounded(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("outer"):
                with trace("inner"):
                    sum(range(1000))
        by_name = {s.name: s for s in rec.spans}
        assert by_name["inner"].wall_s >= 0.0
        assert by_name["inner"].cpu_s >= 0.0
        assert by_name["outer"].wall_s >= by_name["inner"].wall_s

    def test_span_feeds_duration_histogram(self):
        reg = MetricsRegistry()
        with use_registry(reg), use_recorder(SpanRecorder()):
            with trace("stage"):
                pass
        hist = reg.snapshot()["histograms"]["span.stage"]
        assert hist["count"] == 1
        assert hist["sum"] >= 0.0

    def test_ring_buffer_evicts_oldest(self):
        rec = SpanRecorder(capacity=3)
        with use_recorder(rec), use_registry(MetricsRegistry()):
            for i in range(5):
                with trace(f"s{i}"):
                    pass
        assert [s.name for s in rec.spans] == ["s2", "s3", "s4"]
        assert rec.capacity == 3

    def test_ring_buffer_multi_wrap_keeps_completion_order(self):
        # Wrap the ring several times over; the survivors must be the
        # newest `capacity` spans, still oldest-first, with start times
        # monotone (completion order == recording order for flat spans).
        rec = SpanRecorder(capacity=4)
        with use_recorder(rec), use_registry(MetricsRegistry()):
            for i in range(19):
                with trace(f"s{i}"):
                    pass
        assert [s.name for s in rec.spans] == ["s15", "s16", "s17", "s18"]
        starts = [s.start_s for s in rec.spans]
        assert starts == sorted(starts)

    def test_ring_buffer_wrap_with_nesting(self):
        # Children complete before parents; the wrapped ring keeps that
        # completion order, not call order.
        rec = SpanRecorder(capacity=3)
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("old"):
                pass
            with trace("outer"):
                with trace("a"):
                    pass
                with trace("b"):
                    pass
        assert [s.name for s in rec.spans] == ["a", "b", "outer"]
        assert [s.depth for s in rec.spans] == [1, 1, 0]

    def test_exception_still_records_span(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with pytest.raises(RuntimeError):
                with trace("boom"):
                    raise RuntimeError("x")
        assert [s.name for s in rec.spans] == ["boom"]
        assert rec.active == ()

    def test_active_stack_visible_inside(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("a"):
                with trace("b"):
                    assert rec.active == ("a", "b")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_default_recorder_exists(self):
        assert isinstance(get_recorder(), SpanRecorder)


class TestTracingIds:
    """Deterministic span IDs, adoption/stitching, the structural view."""

    @staticmethod
    def _record(rec, names):
        with use_recorder(rec), use_registry(MetricsRegistry()):
            for name in names:
                with trace(name):
                    pass

    def test_deterministic_span_id_is_pure(self):
        from repro.obs import deterministic_span_id

        a = deterministic_span_id("query", "q1")
        assert a == deterministic_span_id("query", "q1")
        assert a != deterministic_span_id("query", "q2")
        assert len(a) == 16 and int(a, 16) >= 0  # 64-bit hex

    def test_query_span_id_matches_scheme(self):
        from repro.obs import deterministic_span_id, query_span_id

        assert query_span_id("d3:d4#7") == deterministic_span_id(
            "query", "d3:d4#7"
        )

    def test_same_context_same_ids(self):
        a = SpanRecorder(context=("root", "task", 0, 3))
        b = SpanRecorder(context=("root", "task", 0, 3))
        self._record(a, ["x", "y", "x"])
        self._record(b, ["x", "y", "x"])
        assert a.trace_id == b.trace_id
        assert [s.span_id for s in a.spans] == [s.span_id for s in b.spans]
        c = SpanRecorder(context=("root", "task", 0, 4))
        self._record(c, ["x", "y", "x"])
        assert c.trace_id != a.trace_id
        assert [s.span_id for s in c.spans] != [s.span_id for s in a.spans]

    def test_per_name_counters_isolate_ids(self):
        # An extra span of a *different* name (an engine.build firing on
        # one worker's cache miss but not another's) must not shift the
        # IDs of the spans around it.
        a = SpanRecorder(context=("root",))
        b = SpanRecorder(context=("root",))
        self._record(a, ["syn.search", "syn.search"])
        self._record(b, ["syn.search", "engine.build", "syn.search"])
        ids_a = [s.span_id for s in a.spans if s.name == "syn.search"]
        ids_b = [s.span_id for s in b.spans if s.name == "syn.search"]
        assert ids_a == ids_b
        # ...while a second span of the *same* name gets a fresh ID.
        assert ids_a[0] != ids_a[1]

    def test_explicit_span_id_and_links_and_attrs(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace(
                "chunk", span_id="feedbeef00000000", attrs=(("pairs", 3),)
            ) as sid:
                assert sid == "feedbeef00000000"
            with trace("query", links=(sid,)):
                pass
        chunk, query = rec.spans
        assert chunk.span_id == "feedbeef00000000"
        assert chunk.attrs == (("pairs", 3),)
        assert query.links == ("feedbeef00000000",)

    def test_trace_yields_derived_id_and_children_see_it(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("outer") as outer_sid:
                with trace("inner"):
                    pass
        inner, outer = rec.spans
        assert outer.span_id == outer_sid
        assert inner.parent_id == outer_sid
        assert inner.trace_id == outer.trace_id == rec.trace_id

    def test_record_complete(self):
        from repro.obs import record_complete

        rec = SpanRecorder()
        reg = MetricsRegistry()
        with use_recorder(rec), use_registry(reg):
            with trace("tick") as tick_sid:
                sid = record_complete(
                    "fleet.query",
                    wall_s=0.25,
                    span_id="aa00aa00aa00aa00",
                    links=("bb00bb00bb00bb00",),
                    attrs=(("query_id", "q1"),),
                )
        assert sid == "aa00aa00aa00aa00"
        span = rec.spans[0]
        assert span.name == "fleet.query"
        assert span.wall_s == 0.25
        assert span.parent == "tick" and span.parent_id == tick_sid
        assert span.depth == 1
        hist = reg.snapshot()["histograms"]["span.fleet.query"]
        assert hist["count"] == 1 and hist["sum"] == pytest.approx(0.25)

    def test_dropped_spans_counted_in_ring_and_registry(self):
        rec = SpanRecorder(capacity=2)
        reg = MetricsRegistry()
        with use_recorder(rec), use_registry(reg):
            for i in range(5):
                with trace(f"s{i}"):
                    pass
        assert rec.dropped == 3
        assert reg.counter("trace.dropped_spans") == 3
        assert rec.structural()["dropped_spans"] == 3
        rec.clear()
        assert rec.dropped == 0

    def test_adopt_reparents_and_rebases(self):
        reg = MetricsRegistry()
        child = SpanRecorder(context=("root", "task", 0, 2))
        with use_recorder(child), use_registry(MetricsRegistry()):
            with trace("task.outer"):
                with trace("task.inner"):
                    pass
        parent = SpanRecorder(context=("root",))
        with use_recorder(parent), use_registry(reg):
            with trace("wave") as wave_sid:
                parent.adopt(child.snapshot())
        inner, outer, wave = parent.spans
        # The task-root span hangs off the wave span; nested structure
        # inside the task is preserved.
        assert outer.name == "task.outer"
        assert outer.parent == "wave" and outer.parent_id == wave_sid
        assert outer.depth == 1
        assert inner.parent == "task.outer"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 2
        # Every adopted span is rebased onto the parent's trace.
        assert {s.trace_id for s in parent.spans} == {parent.trace_id}
        # Adoption must not re-observe span.* histograms (the durations
        # already merged with the task's metrics snapshot).
        hists = reg.snapshot()["histograms"]
        assert "span.task.outer" not in hists
        assert hists["span.wave"]["count"] == 1

    def test_adopt_folds_drop_count_without_recounting(self):
        child = SpanRecorder(capacity=1, context=("root", "task", 0, 0))
        with use_recorder(child), use_registry(MetricsRegistry()):
            for i in range(3):
                with trace(f"s{i}"):
                    pass
        assert child.dropped == 2
        parent = SpanRecorder()
        reg = MetricsRegistry()
        with use_registry(reg):
            parent.adopt(child.snapshot())
        assert parent.dropped == 2
        assert reg.counter("trace.dropped_spans") == 0  # counted once, in task

    def test_structural_strips_placement_and_timing(self):
        rec = SpanRecorder()
        with use_recorder(rec), use_registry(MetricsRegistry()):
            with trace("syn.search"):
                pass
            with trace("engine.build"):
                pass
            with trace("engine.bind_index"):
                pass
        view = rec.structural()
        assert [s["name"] for s in view["spans"]] == ["syn.search"]
        for span in view["spans"]:
            assert "wall_s" not in span and "start_s" not in span
        full = rec.structural(include_placement=True)
        assert [s["name"] for s in full["spans"]] == [
            "syn.search",
            "engine.build",
            "engine.bind_index",
        ]
        assert json.loads(json.dumps(view))  # JSON-serialisable


class TestLogging:
    def test_silent_by_default(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("v2v.exchange").name == "repro.v2v.exchange"
        assert get_logger("repro.core.tracking").name == "repro.core.tracking"

    def test_configure_logging_writes_and_is_idempotent(self):
        stream = io.StringIO()
        root = configure_logging("DEBUG", stream=stream)
        try:
            configure_logging("DEBUG", stream=stream)  # must not duplicate
            get_logger("test").debug("event=%s value=%d", "hello", 3)
            out = stream.getvalue()
            assert out.count("event=hello value=3") == 1
            assert "DEBUG" in out
        finally:
            for handler in list(root.handlers):
                if not isinstance(handler, logging.NullHandler):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("NOISY")
