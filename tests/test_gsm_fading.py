"""Tests for repro.gsm.fading: drift, outages, blockage."""

import numpy as np
import pytest

from repro.gsm.fading import BlockageProcess, OutageProcess, TemporalDrift


class TestTemporalDrift:
    @pytest.fixture(scope="class")
    def drift(self):
        return TemporalDrift(
            n_channels=8, horizon_s=1000.0, sigma_db=2.0, tau_s=300.0, rng=0
        )

    def test_at_shape(self, drift):
        out = drift.at(np.array([0.0, 10.0, 999.0]), np.arange(8))
        assert out.shape == (8, 3)

    def test_pair_at_matches_at(self, drift):
        t = np.array([5.0, 20.0, 100.0])
        ci = np.array([1, 3, 5])
        pair = drift.pair_at(t, ci)
        grid = drift.at(t, np.arange(8))
        assert np.allclose(pair, grid[[1, 3, 5], [0, 1, 2]])

    def test_continuity(self, drift):
        a = drift.pair_at(np.array([50.0]), np.array([0]))
        b = drift.pair_at(np.array([50.001]), np.array([0]))
        assert abs(float(a[0] - b[0])) < 0.01

    def test_determinism(self):
        a = TemporalDrift(4, 100.0, 2.0, 50.0, rng=9)
        b = TemporalDrift(4, 100.0, 2.0, 50.0, rng=9)
        t = np.linspace(0, 99, 17)
        assert np.allclose(a.at(t, np.arange(4)), b.at(t, np.arange(4)))

    def test_marginal_std(self):
        d = TemporalDrift(200, 5000.0, 3.0, 100.0, rng=1)
        vals = d.at(np.linspace(0, 4900, 200), np.arange(200))
        assert np.std(vals) == pytest.approx(3.0, rel=0.1)

    def test_clamps_beyond_horizon(self, drift):
        inside = drift.pair_at(np.array([999.9]), np.array([0]))
        outside = drift.pair_at(np.array([5000.0]), np.array([0]))
        assert np.isfinite(outside).all()
        assert abs(float(inside[0] - outside[0])) < 1.0

    def test_negative_time_rejected(self, drift):
        with pytest.raises(ValueError):
            drift.at(np.array([-1.0]), np.array([0]))

    def test_pair_alignment_enforced(self, drift):
        with pytest.raises(ValueError):
            drift.pair_at(np.array([1.0, 2.0]), np.array([0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalDrift(0, 100.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            TemporalDrift(2, -1.0, 1.0, 10.0)


class TestOutageProcess:
    def test_attenuation_nonnegative(self):
        out = OutageProcess(10, 3600.0, rng=0, rate_per_s=1 / 300.0)
        att = out.attenuation(np.linspace(0, 3599, 100), np.arange(10))
        assert np.all(att >= 0)

    def test_expected_event_count(self):
        rate = 1 / 100.0
        out = OutageProcess(50, 10_000.0, rng=1, rate_per_s=rate)
        n_events = sum(e.starts.size for e in out._events)
        assert n_events == pytest.approx(50 * rate * 10_000.0, rel=0.2)

    def test_pair_matches_grid(self):
        out = OutageProcess(6, 500.0, rng=2, rate_per_s=1 / 50.0)
        t = np.linspace(0, 499, 40)
        ci = np.tile(np.arange(6), 40)[: t.size]
        pair = out.pair_attenuation(t, ci)
        for i in range(t.size):
            grid = out.attenuation(t[i : i + 1], ci[i : i + 1])
            assert pair[i] == pytest.approx(float(grid[0, 0]))

    def test_depth_during_event(self):
        out = OutageProcess(1, 1000.0, rng=3, rate_per_s=1 / 100.0)
        events = out._events[0]
        if events.starts.size:
            mid = (events.starts[0] + min(events.ends[0], 1000.0)) / 2
            att = out.pair_attenuation(np.array([mid]), np.array([0]))
            assert float(att[0]) > 0

    def test_alignment_enforced(self):
        out = OutageProcess(2, 100.0, rng=0)
        with pytest.raises(ValueError):
            out.pair_attenuation(np.array([1.0]), np.array([0, 1]))


class TestBlockageProcess:
    def test_directional_weighting(self):
        blk = BlockageProcess(8, 1000.0, rng=0, rate_per_s=0.05, min_weight=0.1)
        t = np.linspace(0, 999, 500)
        att = blk.attenuation(t, np.arange(8))
        active = att.max(axis=0) > 0
        if np.any(active):
            # During an event every channel is attenuated, but with
            # per-channel directional weights in [min_weight, 1].
            cols = att[:, active]
            assert np.all(cols > 0)
            ratios = cols.min(axis=0) / cols.max(axis=0)
            assert np.all(ratios >= 0.1 - 1e-9)
            # Genuine selectivity: the weights are not all equal.
            assert np.min(ratios) < 0.9

    def test_n_events_property(self):
        blk = BlockageProcess(4, 2000.0, rng=1, rate_per_s=0.02)
        assert blk.n_events == blk._events.starts.size

    def test_rate_scaling(self):
        low = BlockageProcess(4, 50_000.0, rng=2, rate_per_s=0.001)
        high = BlockageProcess(4, 50_000.0, rng=2, rate_per_s=0.05)
        assert high.n_events > low.n_events

    def test_pair_attenuation(self):
        blk = BlockageProcess(4, 1000.0, rng=3, rate_per_s=0.05)
        t = np.linspace(0, 999, 64)
        ci = np.zeros(64, dtype=int)
        pair = blk.pair_attenuation(t, ci)
        grid = blk.attenuation(t, np.array([0]))[0]
        assert np.allclose(pair, grid)

    def test_min_weight_validation(self):
        with pytest.raises(ValueError):
            BlockageProcess(4, 100.0, min_weight=2.0)
