"""Tests for repro.obs.flight: anomaly-triggered span/event dumps."""

import json

import pytest

from repro.obs import (
    EventLedger,
    FlightRecorder,
    MetricsRegistry,
    SpanRecorder,
    trace,
    use_ledger,
    use_recorder,
    use_registry,
)
from repro.obs.events import emit, use_query_id


def _read_dumps(path):
    """Split a flight JSONL file into per-dump record lists."""
    dumps = []
    with open(path) as fh:
        for line in fh:
            record = json.loads(line)
            if record["kind"] == "flight.header":
                dumps.append([record])
            else:
                dumps[-1].append(record)
    return dumps


class _FakeService:
    """Just enough of FleetService for the p99 trigger."""

    def __init__(self):
        self.latency = MetricsRegistry()


class TestDump:
    def test_dump_structure(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        reg = MetricsRegistry()
        rec = SpanRecorder(context=("root",))
        ledger = EventLedger()
        with use_registry(reg), use_recorder(rec), use_ledger(ledger):
            with trace("fleet.tick"):
                pass
            with use_query_id("q1"):
                emit("query.outcome", error_m=0.5)
            with FlightRecorder(str(path)) as flight:
                flight.dump("manual", tick=3, detail={"reason": "test"})
        (dump,) = _read_dumps(path)
        header, *records = dump
        assert header["trigger"] == "manual"
        assert header["tick"] == 3
        assert header["detail"] == {"reason": "test"}
        assert header["dump_index"] == 0
        assert header["trace_id"] == rec.trace_id
        assert header["n_spans"] == 1 and header["n_events"] == 1
        spans = [r for r in records if r["kind"] == "flight.span"]
        events = [r for r in records if r["kind"] == "flight.event"]
        assert [s["name"] for s in spans] == ["fleet.tick"]
        assert "wall_s" not in spans[0]  # structural by default
        assert events[0]["event"]["kind"] == "query.outcome"
        assert events[0]["event"]["query_id"] == "q1"
        assert events[0]["event"]["span_id"]  # query-span exemplar attached
        assert reg.counter("flight.dumps") == 1

    def test_include_timings_adds_wall_clock(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = SpanRecorder()
        with use_registry(MetricsRegistry()), use_recorder(rec), use_ledger(
            EventLedger()
        ):
            with trace("stage"):
                pass
            with FlightRecorder(str(path), include_timings=True) as flight:
                flight.dump("manual")
        (dump,) = _read_dumps(path)
        span = next(r for r in dump if r["kind"] == "flight.span")
        assert span["wall_s"] >= 0.0 and span["cpu_s"] >= 0.0

    def test_tails_bound_the_dump(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = SpanRecorder(capacity=64)
        with use_registry(MetricsRegistry()), use_recorder(rec), use_ledger(
            EventLedger()
        ):
            for i in range(10):
                with trace(f"s{i}"):
                    pass
                with use_query_id(f"q{i}"):
                    emit("e")
            with FlightRecorder(
                str(path), span_tail=3, event_tail=2
            ) as flight:
                flight.dump("manual")
        (dump,) = _read_dumps(path)
        spans = [r for r in dump if r["kind"] == "flight.span"]
        events = [r for r in dump if r["kind"] == "flight.event"]
        # The *newest* spans/events survive, oldest-first.
        assert [s["name"] for s in spans] == ["s7", "s8", "s9"]
        assert [e["event"]["query_id"] for e in events] == ["q8", "q9"]

    def test_multiple_dumps_append_to_one_file(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with use_registry(MetricsRegistry()), use_recorder(
            SpanRecorder()
        ), use_ledger(EventLedger()):
            with FlightRecorder(str(path)) as flight:
                flight.dump("first")
                flight.dump("second")
                assert flight.n_dumps == 2
        dumps = _read_dumps(path)
        assert [d[0]["trigger"] for d in dumps] == ["first", "second"]
        assert [d[0]["dump_index"] for d in dumps] == [0, 1]

    def test_tail_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path / "f.jsonl"), span_tail=0)
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path / "f.jsonl"), event_tail=0)


class TestTriggers:
    def test_lock_drop_storm_fires_on_tick_delta(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        reg = MetricsRegistry()
        service = _FakeService()
        with use_registry(reg), use_recorder(SpanRecorder()), use_ledger(
            EventLedger()
        ):
            flight = FlightRecorder(str(path), lock_drop_threshold=4)
            assert flight.after_tick(service) is None  # quiet tick
            reg.inc("tracker.lock_dropped.failures", 3)
            reg.inc("tracker.lock_dropped.staleness", 1)
            assert flight.after_tick(service) == "lock_drop_storm"
            # The trigger is a per-tick *delta*: the same cumulative
            # count does not re-fire on the next tick.
            assert flight.after_tick(service) is None
            flight.close()
        (dump,) = _read_dumps(path)
        assert dump[0]["trigger"] == "lock_drop_storm"
        assert dump[0]["tick"] == 1
        assert dump[0]["detail"] == {"lock_drops_this_tick": 4}

    def test_lock_drop_trigger_disabled_by_none(self, tmp_path):
        reg = MetricsRegistry()
        service = _FakeService()
        with use_registry(reg), use_recorder(SpanRecorder()), use_ledger(
            EventLedger()
        ):
            flight = FlightRecorder(
                str(tmp_path / "f.jsonl"), lock_drop_threshold=None
            )
            reg.inc("tracker.lock_dropped.failures", 100)
            assert flight.after_tick(service) is None
            flight.close()
        assert flight.n_dumps == 0

    def test_p99_breach_fires_when_armed(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        service = _FakeService()
        for _ in range(20):
            service.latency.observe(
                "fleet.query_latency_s", 5.0, buckets=(0.1, 1.0)
            )
        with use_registry(MetricsRegistry()), use_recorder(
            SpanRecorder()
        ), use_ledger(EventLedger()):
            # Off by default: wall clock must not fire dumps unasked.
            silent = FlightRecorder(
                str(tmp_path / "silent.jsonl"), lock_drop_threshold=None
            )
            assert silent.after_tick(service) is None
            armed = FlightRecorder(
                str(path), lock_drop_threshold=None, p99_budget_s=1.0
            )
            assert armed.after_tick(service) == "slo_breach"
            armed.close()
        (dump,) = _read_dumps(path)
        assert dump[0]["trigger"] == "slo_breach"
        assert dump[0]["detail"]["budget_s"] == 1.0
        assert dump[0]["detail"]["p99_s"] > 1.0

    def test_p99_empty_histogram_never_fires(self, tmp_path):
        service = _FakeService()  # no latency observations: p99 is NaN
        with use_registry(MetricsRegistry()), use_recorder(
            SpanRecorder()
        ), use_ledger(EventLedger()):
            flight = FlightRecorder(
                str(tmp_path / "f.jsonl"),
                lock_drop_threshold=None,
                p99_budget_s=0.001,
            )
            assert flight.after_tick(service) is None
        assert flight.n_dumps == 0
