"""Tests for repro.core.config and repro.core.engine."""

import numpy as np
import pytest

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine, RupsEstimate


class TestRupsConfig:
    def test_paper_defaults(self):
        cfg = RupsConfig()
        assert cfg.context_length_m == 1000.0  # SV-A
        assert cfg.window_channels == 45  # SVI-B "top 45 channels"
        assert cfg.coherency_threshold == 1.2  # SVI-B
        assert cfg.spacing_m == 1.0  # SIII-A 1 m grid
        assert cfg.n_syn_points == 5  # SVI-C
        assert cfg.min_window_length_m == 10.0  # SV-C

    def test_window_marks(self):
        cfg = RupsConfig(window_length_m=85.0, spacing_m=1.0)
        assert cfg.window_marks == 86

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"context_length_m": 0.0},
            {"window_length_m": 2000.0},
            {"window_channels": 0},
            {"coherency_threshold": 3.0},
            {"spacing_m": -1.0},
            {"n_syn_points": 0},
            {"syn_stride_m": 0.0},
            {"aggregation": "mode"},
            {"min_window_length_m": 500.0},
            {"min_coherency_threshold": 1.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RupsConfig(**kwargs)

    def test_threshold_for_window_endpoints(self):
        cfg = RupsConfig()
        assert cfg.threshold_for_window(cfg.window_length_m) == pytest.approx(
            cfg.coherency_threshold
        )
        assert cfg.threshold_for_window(cfg.min_window_length_m) == pytest.approx(
            cfg.min_coherency_threshold
        )

    def test_threshold_for_window_monotone(self):
        cfg = RupsConfig()
        ws = np.linspace(cfg.min_window_length_m, cfg.window_length_m, 8)
        ts = [cfg.threshold_for_window(w) for w in ws]
        assert np.all(np.diff(ts) >= 0)

    def test_threshold_below_minimum_rejected(self):
        cfg = RupsConfig()
        with pytest.raises(ValueError):
            cfg.threshold_for_window(5.0)


class TestRupsEngine:
    def test_build_trajectory(self, shared_pair, shared_engine):
        traj = shared_engine.build_trajectory(
            shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=200.0
        )
        assert traj.n_marks == 601  # context 600 m at 1 m spacing
        assert traj.missing_fraction == 0.0  # interpolated

    def test_estimate_accuracy(self, shared_pair, shared_engine):
        tq = 200.0
        own = shared_engine.build_trajectory(
            shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=tq
        )
        other = shared_engine.build_trajectory(
            shared_pair.front.scan, shared_pair.front.estimated, at_time_s=tq
        )
        est = shared_engine.estimate_relative_distance(own, other)
        truth = float(shared_pair.scenario.true_relative_distance(tq))
        assert est.resolved
        assert est.distance_m == pytest.approx(truth, abs=8.0)
        assert est.best_score is not None and est.best_score > 1.2

    def test_query_one_shot(self, shared_pair, shared_engine):
        tq = 210.0
        other = shared_engine.build_trajectory(
            shared_pair.front.scan, shared_pair.front.estimated, at_time_s=tq
        )
        est = shared_engine.query(
            shared_pair.rear.scan,
            shared_pair.rear.estimated,
            other,
            at_time_s=tq,
        )
        assert isinstance(est, RupsEstimate)
        assert est.resolved

    def test_aggregation_override(self, shared_pair, shared_engine):
        tq = 200.0
        own = shared_engine.build_trajectory(
            shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=tq
        )
        other = shared_engine.build_trajectory(
            shared_pair.front.scan, shared_pair.front.estimated, at_time_s=tq
        )
        single = shared_engine.estimate_relative_distance(
            own, other, n_syn_points=1, aggregation="single"
        )
        assert single.aggregation == "single"
        assert len(single.syn_points) <= 1

    def test_channel_reduction_agrees(self, shared_pair, shared_engine):
        tq = 200.0
        own = shared_engine.build_trajectory(
            shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=tq
        )
        other = shared_engine.build_trajectory(
            shared_pair.front.scan, shared_pair.front.estimated, at_time_s=tq
        )
        own_r, other_r = shared_engine._reduce_channels(own, other)
        assert np.array_equal(own_r.channel_ids, other_r.channel_ids)
        assert own_r.n_channels <= shared_engine.config.window_channels

    def test_unrelated_trajectories_unresolved(self, shared_pair, shared_engine, small_plan):
        # Pair the rear vehicle with a front trajectory from a different
        # road: must not resolve.
        from repro.experiments.traces import drive_pair
        from repro.roads.types import RoadType

        other_pair = drive_pair(
            road_type=RoadType.URBAN_4LANE,
            duration_s=240.0,
            n_radios=4,
            plan=small_plan,
            seed=12345,
        )
        tq = 200.0
        own = shared_engine.build_trajectory(
            shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=tq
        )
        foreign = shared_engine.build_trajectory(
            other_pair.front.scan, other_pair.front.estimated, at_time_s=tq
        )
        est = shared_engine.estimate_relative_distance(own, foreign)
        assert not est.resolved
        assert est.distance_m is None

    def test_estimate_repr_fields(self, shared_pair, shared_engine):
        tq = 215.0
        own = shared_engine.build_trajectory(
            shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=tq
        )
        other = shared_engine.build_trajectory(
            shared_pair.front.scan, shared_pair.front.estimated, at_time_s=tq
        )
        est = shared_engine.estimate_relative_distance(own, other)
        assert len(est.per_syn_m) == len(est.syn_points)
        if est.syn_points:
            assert est.best_score == max(s.score for s in est.syn_points)
