"""Tests for repro.baselines.time_domain: the unbound matcher."""

import numpy as np
import pytest

from repro.baselines.time_domain import TimeDomainEstimate, TimeDomainMatcher


@pytest.fixture(scope="module")
def matcher():
    return TimeDomainMatcher(
        window_s=10.0, context_s=60.0, grid_dt_s=0.5, n_channels=25
    )


class TestTimeDomainMatcher:
    def test_resolves_on_real_pair(self, matcher, shared_pair):
        tq = 200.0
        est = matcher.estimate(
            shared_pair.rear.scan,
            shared_pair.rear.estimated,
            shared_pair.front.scan,
            tq,
        )
        assert isinstance(est, TimeDomainEstimate)
        if est.resolved:
            truth = float(shared_pair.scenario.true_relative_distance(tq))
            # Time-domain matching is coarse; just demand the right order
            # of magnitude and sign.
            assert est.distance_m > 0
            assert abs(est.distance_m - truth) < 40.0
            assert est.lag_s is not None and est.lag_s > 0

    def test_worse_than_binding_on_average(self, matcher, shared_pair, shared_engine):
        rng = np.random.default_rng(0)
        t_lo, t_hi = shared_pair.query_window(600.0)
        td, rups = [], []
        for tq in rng.uniform(t_lo, t_hi, 10):
            truth = float(shared_pair.scenario.true_relative_distance(tq))
            e = matcher.estimate(
                shared_pair.rear.scan,
                shared_pair.rear.estimated,
                shared_pair.front.scan,
                tq,
            )
            if e.resolved:
                td.append(abs(e.distance_m - truth))
            own = shared_engine.build_trajectory(
                shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=tq
            )
            other = shared_engine.build_trajectory(
                shared_pair.front.scan, shared_pair.front.estimated, at_time_s=tq
            )
            r = shared_engine.estimate_relative_distance(own, other)
            if r.resolved:
                rups.append(abs(r.distance_m - truth))
        assert rups, "RUPS must resolve"
        # Binding either resolves more often or is more accurate.
        if td:
            assert np.mean(rups) <= np.mean(td) + 0.5
        assert len(rups) >= len(td)

    def test_unrelated_streams_rejected(self, matcher, shared_pair, small_plan):
        from repro.experiments.traces import drive_pair

        foreign = drive_pair(duration_s=240.0, plan=small_plan, seed=4242)
        est = matcher.estimate(
            shared_pair.rear.scan,
            shared_pair.rear.estimated,
            foreign.front.scan,
            200.0,
        )
        assert not est.resolved

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeDomainMatcher(window_s=0.0)
        with pytest.raises(ValueError):
            TimeDomainMatcher(window_s=50.0, context_s=40.0)
        with pytest.raises(ValueError):
            TimeDomainMatcher(grid_dt_s=0.0)
