"""Tests for the receive path: reassembly, delta application, NACK, backoff."""

import numpy as np
import pytest

from repro.core.trajectory import GeoTrajectory, GsmTrajectory
from repro.v2v.channel import DsrcChannel, TransferResult
from repro.v2v.exchange import (
    DeltaGapError,
    ExchangeReceiver,
    ExchangeSession,
    apply_delta,
)
from repro.v2v.faults import FaultPlan
from repro.v2v.serialization import encode_trajectory
from repro.v2v.wsm import ReassemblyBuffer, WsmPacket, fragment_payload


def make_traj(n_channels=8, n_marks=201, seed=0, start=0.0):
    rng = np.random.default_rng(seed)
    power = rng.uniform(-109.0, -50.0, size=(n_channels, n_marks))
    geo = GeoTrajectory(
        timestamps_s=np.sort(rng.uniform(0.0, 100.0, n_marks)),
        headings_rad=rng.uniform(-np.pi, np.pi, n_marks),
        spacing_m=1.0,
        start_distance_m=start,
    )
    return GsmTrajectory(power, np.arange(n_channels), geo)


def arrivals_result(packets):
    """A TransferResult whose arrival stream is exactly ``packets``."""
    return TransferResult(
        time_s=0.0,
        packets_sent=len(packets),
        retransmissions=0,
        bytes_on_air=sum(p.wire_bytes for p in packets),
        delivered=True,
        fragment_arrived=(True,) * len(packets),
        arrivals=tuple(packets),
    )


class TestReassemblyBuffer:
    def test_out_of_order_completion(self):
        packets = fragment_payload(b"abc" * 2000, message_id=4)
        buf = ReassemblyBuffer()
        for p in reversed(packets[1:]):
            assert buf.add(p) is None
        assert buf.add(packets[0]) == b"abc" * 2000
        assert buf.messages_completed == 1

    def test_duplicates_silently_dropped(self):
        packets = fragment_payload(b"\x05" * 3000, message_id=1)
        buf = ReassemblyBuffer()
        buf.add(packets[0])
        assert buf.add(packets[0]) is None
        assert buf.duplicates_dropped == 1
        assert buf.missing(1) == [1, 2]

    def test_straggler_after_completion_dropped(self):
        # A duplicate arriving after the message completed must not
        # re-open it and deliver the payload twice.
        packets = fragment_payload(b"x", message_id=9)
        buf = ReassemblyBuffer()
        assert buf.add(packets[0]) == b"x"
        assert buf.add(packets[0]) is None
        assert buf.duplicates_dropped == 1
        assert buf.messages_completed == 1

    def test_contradicting_count_raises(self):
        buf = ReassemblyBuffer()
        buf.add(WsmPacket(message_id=2, index=0, count=3, payload=b"a"))
        with pytest.raises(ValueError, match="contradicts"):
            buf.add(WsmPacket(message_id=2, index=1, count=4, payload=b"b"))

    def test_expiry(self):
        packets = fragment_payload(b"\x06" * 3000, message_id=7)
        buf = ReassemblyBuffer(timeout_s=0.5)
        buf.add(packets[0], now_s=0.0)
        assert buf.expire(0.4) == []
        assert buf.expire(0.6) == [7]
        assert buf.messages_expired == 1
        assert buf.pending_ids() == []

    def test_expire_purges_completed_memory(self):
        packets = fragment_payload(b"y", message_id=3)
        buf = ReassemblyBuffer(timeout_s=0.5)
        assert buf.add(packets[0], now_s=0.0) == b"y"
        buf.expire(1.0)
        # After the horizon the id is forgotten; a reuse decodes afresh.
        assert buf.add(packets[0], now_s=1.0) == b"y"

    def test_validation(self):
        with pytest.raises(ValueError):
            ReassemblyBuffer(timeout_s=0.0)


class TestApplyDelta:
    def test_contiguous_delta_extends(self):
        traj = make_traj(n_marks=201)
        context = traj.slice_marks(0, 100)
        delta = traj.slice_marks(99, 150)  # one overlapping mark
        merged = apply_delta(context, delta)
        assert merged.n_marks == 150
        assert merged.geo.end_distance_m == pytest.approx(
            traj.slice_marks(0, 150).geo.end_distance_m
        )
        np.testing.assert_array_equal(
            merged.power_dbm, traj.slice_marks(0, 150).power_dbm
        )

    def test_stale_duplicate_is_identity(self):
        traj = make_traj(n_marks=201)
        context = traj.slice_marks(0, 100)
        stale = traj.slice_marks(40, 80)
        assert apply_delta(context, stale) is context

    def test_gap_raises(self):
        traj = make_traj(n_marks=201)
        context = traj.slice_marks(0, 100)
        gap = traj.slice_marks(120, 150)
        with pytest.raises(DeltaGapError):
            apply_delta(context, gap)

    def test_channel_table_mismatch_raises(self):
        context = make_traj(n_channels=8, n_marks=100)
        delta = make_traj(n_channels=6, n_marks=40, start=99.0)
        with pytest.raises(ValueError, match="channel table"):
            apply_delta(context, delta)


class TestExchangeReceiver:
    def test_full_sync_installs_context(self):
        traj = make_traj()
        receiver = ExchangeReceiver()
        packets = fragment_payload(b"F" + encode_trajectory(traj), 1)
        outcome = receiver.receive(arrivals_result(packets), now_s=2.0)
        assert outcome.applied == "full"
        assert outcome.decoded_ids == (1,)
        assert receiver.full_syncs == 1
        assert receiver.context is not None
        assert receiver.context.n_marks == traj.n_marks
        assert receiver.context_age_s(2.0) == 0.0
        assert receiver.context_age_s(3.5) == pytest.approx(1.5)

    def test_delta_without_context_requests_resync(self):
        traj = make_traj(n_marks=50)
        receiver = ExchangeReceiver()
        assert receiver.context_age_s(0.0) == float("inf")
        packets = fragment_payload(b"D" + encode_trajectory(traj), 1)
        outcome = receiver.receive(arrivals_result(packets))
        assert outcome.applied == "gap"
        assert receiver.needs_full_resync
        assert receiver.gaps_detected == 1

    def test_gap_delta_requests_resync_then_full_clears(self):
        traj = make_traj(n_marks=301)
        receiver = ExchangeReceiver()
        receiver.receive(
            arrivals_result(
                fragment_payload(
                    b"F" + encode_trajectory(traj.slice_marks(0, 100)), 1
                )
            )
        )
        outcome = receiver.receive(
            arrivals_result(
                fragment_payload(
                    b"D" + encode_trajectory(traj.slice_marks(150, 200)), 2
                )
            )
        )
        assert outcome.applied == "gap"
        assert receiver.needs_full_resync
        outcome = receiver.receive(
            arrivals_result(
                fragment_payload(
                    b"F" + encode_trajectory(traj.slice_marks(0, 200)), 3
                )
            )
        )
        assert outcome.applied == "full"
        assert not receiver.needs_full_resync

    def test_undecodable_message_rejected(self):
        receiver = ExchangeReceiver()
        packets = fragment_payload(b"Fnot a trajectory", 1)
        outcome = receiver.receive(arrivals_result(packets))
        assert outcome.applied == "rejected"
        assert receiver.decode_failures == 1
        assert receiver.needs_full_resync

    def test_unknown_kind_rejected(self):
        receiver = ExchangeReceiver()
        packets = fragment_payload(b"Zwhatever", 1)
        outcome = receiver.receive(arrivals_result(packets))
        assert outcome.applied == "rejected"

    def test_context_trimmed_to_budget(self):
        traj = make_traj(n_marks=301)
        receiver = ExchangeReceiver(max_context_m=100.0)
        receiver.receive(
            arrivals_result(
                fragment_payload(
                    b"F" + encode_trajectory(traj.slice_marks(0, 150)), 1
                )
            )
        )
        receiver.receive(
            arrivals_result(
                fragment_payload(
                    b"D" + encode_trajectory(traj.slice_marks(149, 250)), 2
                )
            )
        )
        assert receiver.context is not None
        assert receiver.context.length_m <= 100.0 + 1e-9
        assert receiver.context.geo.end_distance_m == pytest.approx(249.0)


class TestExchangeUpdate:
    def test_lossless_full_then_delta(self):
        session = ExchangeSession(channel=DsrcChannel(loss_prob=0.0), rng=0)
        receiver = ExchangeReceiver()
        traj = make_traj(n_marks=301)
        out = session.exchange_update(traj.slice_marks(0, 200), receiver)
        assert out.mode == "full" and out.delivered
        session.notify_syn_found()
        out = session.exchange_update(traj.slice_marks(0, 210), receiver, now_s=0.1)
        assert out.mode == "delta" and out.delivered
        assert receiver.deltas_applied == 1
        assert receiver.context.geo.end_distance_m == pytest.approx(209.0)

    def test_idle_when_nothing_new(self):
        session = ExchangeSession(channel=DsrcChannel(loss_prob=0.0), rng=0)
        receiver = ExchangeReceiver()
        traj = make_traj(n_marks=101)
        session.exchange_update(traj, receiver)
        session.notify_syn_found()
        out = session.exchange_update(traj, receiver, now_s=0.1)
        assert out.mode == "idle"
        assert out.delivered and out.bytes_on_air == 0

    def test_nack_recovers_lossy_transfer(self):
        # max_retries=0 so the link itself never retries; only the
        # NACK loop can complete the message.
        session = ExchangeSession(
            channel=DsrcChannel(loss_prob=0.4, max_retries=0),
            rng=42,
            max_nack_rounds=25,
        )
        receiver = ExchangeReceiver()
        out = session.exchange_update(make_traj(n_marks=301), receiver)
        assert out.delivered
        assert out.nack_rounds >= 1
        assert out.retransmitted_fragments >= 1
        assert receiver.full_syncs == 1

    def test_blackout_aborts_and_backs_off(self):
        session = ExchangeSession(
            channel=DsrcChannel(loss_prob=0.0),
            rng=0,
            max_nack_rounds=2,
            backoff_base_s=0.1,
            max_backoff_s=1.0,
        )
        receiver = ExchangeReceiver()
        traj = make_traj(n_marks=201)
        dead = FaultPlan.blackout(0.0, 1e9)
        out = session.exchange_update(traj, receiver, now_s=0.0, faults=dead)
        assert out.aborted and not out.delivered
        assert session.consecutive_aborts == 1
        assert out.backoff_s == pytest.approx(0.1)

        # While backed off, nothing is sent at all.
        suppressed = session.exchange_update(traj, receiver, now_s=out.time_s)
        assert suppressed.mode == "backoff"
        assert suppressed.bytes_on_air == 0

        # A second abort doubles the backoff.
        later = session.backoff_until_s + 1e-6
        out2 = session.exchange_update(traj, receiver, now_s=later, faults=dead)
        assert out2.aborted
        assert session.consecutive_aborts == 2
        assert out2.backoff_s == pytest.approx(0.2)

        # Once the channel heals, delivery succeeds, resets the abort
        # counter, and the recovery round is a full sync.
        healed = session.exchange_update(
            traj, receiver, now_s=session.backoff_until_s + 1e-6
        )
        assert healed.mode == "full" and healed.delivered
        assert session.consecutive_aborts == 0

    def test_abort_forces_full_after_lock(self):
        session = ExchangeSession(
            channel=DsrcChannel(loss_prob=0.0),
            rng=0,
            backoff_base_s=0.01,
            max_backoff_s=0.01,
        )
        receiver = ExchangeReceiver()
        traj = make_traj(n_marks=301)
        session.exchange_update(traj.slice_marks(0, 200), receiver)
        session.notify_syn_found()
        dead = FaultPlan.blackout(0.0, 1e9)
        out = session.exchange_update(
            traj.slice_marks(0, 210), receiver, now_s=1.0, faults=dead
        )
        assert out.mode == "delta" and out.aborted
        # The lost delta would leave a hole; the next round must not
        # try to paper over it with another delta.
        out = session.exchange_update(
            traj.slice_marks(0, 220), receiver, now_s=2.0
        )
        assert out.mode == "full" and out.delivered

    def test_receiver_gap_triggers_sender_full(self):
        session = ExchangeSession(channel=DsrcChannel(loss_prob=0.0), rng=0)
        receiver = ExchangeReceiver()
        traj = make_traj(n_marks=301)
        session.exchange_update(traj.slice_marks(0, 200), receiver)
        session.notify_syn_found()
        # The receiver loses its context out-of-band (reboot).
        receiver.context = None
        receiver.context_time_s = None
        receiver.needs_full_resync = True
        out = session.exchange_update(traj.slice_marks(0, 210), receiver, now_s=1.0)
        assert out.mode == "full" and out.delivered
        assert not receiver.needs_full_resync

    def test_validation(self):
        with pytest.raises(ValueError):
            ExchangeSession(max_nack_rounds=-1)
        with pytest.raises(ValueError):
            ExchangeSession(backoff_base_s=0.0)
        with pytest.raises(ValueError):
            ExchangeSession(backoff_base_s=0.5, max_backoff_s=0.1)
