"""Tests for repro.v2v.serialization and repro.v2v.exchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trajectory import GeoTrajectory, GsmTrajectory
from repro.v2v.channel import DsrcChannel
from repro.v2v.exchange import ExchangeSession, estimate_exchange_time
from repro.v2v.serialization import (
    decode_trajectory,
    encode_trajectory,
    encoded_size_bytes,
)


def make_traj(n_channels=8, n_marks=101, seed=0, with_nans=False, start=500.0):
    rng = np.random.default_rng(seed)
    power = rng.uniform(-109.0, -50.0, size=(n_channels, n_marks))
    if with_nans:
        power[rng.random(power.shape) < 0.1] = np.nan
    geo = GeoTrajectory(
        timestamps_s=np.sort(rng.uniform(0.0, 100.0, n_marks)),
        headings_rad=rng.uniform(-np.pi, np.pi, n_marks),
        spacing_m=1.0,
        start_distance_m=start,
    )
    return GsmTrajectory(power, np.arange(n_channels), geo)


class TestCodec:
    def test_size_prediction(self):
        traj = make_traj()
        assert len(encode_trajectory(traj)) == encoded_size_bytes(8, 101)

    def test_paper_size_arithmetic(self):
        # 1 km, 1 m marks, full 194-channel band: paper says "about 182KB".
        size = encoded_size_bytes(194, 1001)
        assert size == pytest.approx(182 * 1024, rel=0.10)

    def test_roundtrip_power_accuracy(self):
        traj = make_traj(seed=1)
        decoded = decode_trajectory(encode_trajectory(traj))
        assert np.max(np.abs(decoded.power_dbm - traj.power_dbm)) <= 0.25

    def test_roundtrip_geo_accuracy(self):
        traj = make_traj(seed=2)
        decoded = decode_trajectory(encode_trajectory(traj))
        assert np.max(
            np.abs(decoded.geo.timestamps_s - traj.geo.timestamps_s)
        ) <= 0.0005 + 1e-9
        d_head = np.arctan2(
            np.sin(decoded.geo.headings_rad - traj.geo.headings_rad),
            np.cos(decoded.geo.headings_rad - traj.geo.headings_rad),
        )
        assert np.max(np.abs(d_head)) <= 1e-4 + 1e-9
        assert decoded.geo.start_distance_m == pytest.approx(
            traj.geo.start_distance_m, abs=0.001
        )

    def test_roundtrip_preserves_nans(self):
        traj = make_traj(seed=3, with_nans=True)
        decoded = decode_trajectory(encode_trajectory(traj))
        assert np.array_equal(np.isnan(decoded.power_dbm), np.isnan(traj.power_dbm))

    def test_roundtrip_channel_ids(self):
        traj = make_traj(seed=4)
        decoded = decode_trajectory(encode_trajectory(traj))
        assert np.array_equal(decoded.channel_ids, traj.channel_ids)

    @given(st.integers(2, 30), st.integers(2, 60), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_any_shape(self, n_ch, n_marks, seed):
        traj = make_traj(n_channels=n_ch, n_marks=n_marks, seed=seed)
        decoded = decode_trajectory(encode_trajectory(traj))
        assert decoded.n_channels == n_ch
        assert decoded.n_marks == n_marks
        assert np.max(np.abs(decoded.power_dbm - traj.power_dbm)) <= 0.25

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_trajectory(b"not a trajectory at all")
        with pytest.raises(ValueError):
            decode_trajectory(b"")

    def test_decode_rejects_truncated(self):
        data = encode_trajectory(make_traj())
        with pytest.raises(ValueError, match="length"):
            decode_trajectory(data[:-10])


class TestEstimateExchangeTime:
    def test_paper_numbers(self):
        n_bytes, n_packets, seconds = estimate_exchange_time(1000.0, 194)
        assert n_bytes / 1024 == pytest.approx(182, rel=0.10)
        assert n_packets == pytest.approx(130, rel=0.15)
        assert seconds == pytest.approx(0.52, rel=0.15)

    def test_scales_with_context(self):
        b1, _, t1 = estimate_exchange_time(100.0, 115)
        b2, _, t2 = estimate_exchange_time(1000.0, 115)
        assert b2 > 8 * b1
        assert t2 > 8 * t1


class TestExchangeSession:
    def test_first_update_is_full(self):
        session = ExchangeSession(rng=0)
        traj = make_traj(n_channels=20, n_marks=501)
        result = session.send_update(traj)
        assert result.delivered
        assert result.bytes_on_air > 5000
        assert not session.locked

    def test_incremental_after_lock(self):
        session = ExchangeSession(rng=1)
        traj = make_traj(n_channels=20, n_marks=501, start=500.0)
        session.send_update(traj)
        session.notify_syn_found()
        assert session.locked
        # vehicle drove 3 m since: only a few marks go out
        newer = make_traj(n_channels=20, n_marks=501, start=503.0, seed=9)
        result = session.send_update(newer)
        assert result.delivered
        assert result.packets_sent <= 2
        assert result.bytes_on_air < 1000

    def test_no_motion_no_bytes(self):
        session = ExchangeSession(rng=2)
        traj = make_traj(n_channels=10, n_marks=101)
        session.send_update(traj)
        session.notify_syn_found()
        result = session.send_update(traj)
        assert result.bytes_on_air == 0
        assert result.delivered

    def test_drift_threshold_forces_full_resync(self):
        session = ExchangeSession(rng=3, resync_error_threshold_m=1.0, drift_rate=0.01)
        traj = make_traj(n_channels=10, n_marks=201, start=200.0)
        session.send_update(traj)
        session.notify_syn_found()
        # 150 m of driving at 1% drift exceeds the 1 m bound.
        newer = make_traj(n_channels=10, n_marks=201, start=350.0, seed=5)
        session.send_update(newer)
        after = make_traj(n_channels=10, n_marks=201, start=352.0, seed=6)
        result = session.send_update(after)
        # the resync is a full context again
        assert result.bytes_on_air > 2000

    def test_lock_loss_forces_full(self):
        session = ExchangeSession(rng=4)
        traj = make_traj(n_channels=10, n_marks=201, start=100.0)
        session.send_update(traj)
        session.notify_syn_found()
        session.notify_lock_lost()
        newer = make_traj(n_channels=10, n_marks=201, start=103.0, seed=8)
        result = session.send_update(newer)
        assert result.bytes_on_air > 2000

    def test_notify_before_transfer_rejected(self):
        with pytest.raises(RuntimeError):
            ExchangeSession().notify_syn_found()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExchangeSession(resync_error_threshold_m=0.0)
        with pytest.raises(ValueError):
            ExchangeSession(drift_rate=-0.1)
