"""Tests for repro.core.power_vector: eq. (1) and eq. (3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.power_vector import (
    pairwise_pearson,
    pearson_correlation,
    relative_change,
)

vectors = hnp.arrays(
    dtype=float,
    shape=st.integers(3, 40),
    elements=st.floats(-110.0, -40.0, allow_nan=False),
)


class TestPearsonEq1:
    def test_perfect_correlation(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson_correlation(x, 2 * x + 5) == pytest.approx(1.0)

    def test_anti_correlation(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=(2, 50))
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_constant_vector_is_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_nan_pairwise_exclusion(self):
        x = np.array([1.0, 2.0, np.nan, 4.0, 5.0])
        y = np.array([2.0, 4.0, 100.0, 8.0, 10.0])
        assert pearson_correlation(x, y) == pytest.approx(1.0)

    def test_too_few_common_channels(self):
        x = np.array([1.0, np.nan, np.nan])
        y = np.array([2.0, 1.0, 1.0])
        assert pearson_correlation(x, y) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.zeros(3), np.zeros(4))

    @given(vectors, vectors)
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, x, y):
        n = min(x.size, y.size)
        r = pearson_correlation(x[:n], y[:n])
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

    @given(vectors)
    @settings(max_examples=30, deadline=None)
    def test_self_correlation(self, x):
        # Self-correlation is 1 for any vector with variance; exactly-
        # degenerate vectors yield the defined 0.  (Near-degenerate
        # float inputs may legitimately land on either side of the
        # internal threshold, so both outcomes are acceptable there.)
        r = pearson_correlation(x, x)
        if np.std(x) > 1e-6:
            assert r == pytest.approx(1.0)
        else:
            assert r == pytest.approx(1.0) or r == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        x, y = rng.normal(size=(2, 20))
        assert pearson_correlation(x, y) == pytest.approx(pearson_correlation(y, x))


class TestPairwisePearson:
    def test_matches_rowwise_scalar(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(6, 30))
        b = rng.normal(size=(6, 30))
        batch = pairwise_pearson(a, b)
        for i in range(6):
            assert batch[i] == pytest.approx(pearson_correlation(a[i], b[i]))

    def test_nan_handling_matches_scalar(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 20))
        b = rng.normal(size=(4, 20))
        a[1, 3] = np.nan
        b[2, 7] = np.nan
        batch = pairwise_pearson(a, b)
        for i in range(4):
            assert batch[i] == pytest.approx(pearson_correlation(a[i], b[i]))

    def test_degenerate_rows_zero(self):
        a = np.vstack([np.ones(10), np.arange(10.0)])
        b = np.vstack([np.arange(10.0), np.arange(10.0)])
        batch = pairwise_pearson(a, b)
        assert batch[0] == 0.0
        assert batch[1] == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pairwise_pearson(np.zeros((2, 3)), np.zeros((3, 3)))


class TestRelativeChangeEq3:
    def test_identical_is_zero(self):
        x = np.array([-70.0, -80.0, -90.0])
        assert relative_change(x, x) == 0.0

    def test_known_value(self):
        x = np.array([3.0, 4.0])  # norm 5
        xp = np.array([0.0, 0.0])
        assert relative_change(x, xp) == pytest.approx(1.0)

    def test_floor_reference(self):
        x = np.array([-100.0, -100.0])
        xp = np.array([-90.0, -110.0])
        # re-referenced to -110: x=[10,10], xp=[20,0]; ||d||=sqrt(200), ||x||=sqrt(200)
        assert relative_change(x, xp, reference_dbm=-110.0) == pytest.approx(1.0)

    def test_zero_reference_vector(self):
        assert relative_change(np.zeros(3), np.ones(3)) == np.inf
        assert relative_change(np.zeros(3), np.zeros(3)) == 0.0

    def test_nan_exclusion(self):
        x = np.array([3.0, np.nan, 4.0])
        xp = np.array([0.0, 5.0, 0.0])
        assert relative_change(x, xp) == pytest.approx(1.0)

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            relative_change(np.array([np.nan]), np.array([1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_change(np.zeros(2), np.zeros(3))

    @given(vectors)
    @settings(max_examples=30, deadline=None)
    def test_nonnegative(self, x):
        rng = np.random.default_rng(0)
        xp = x + rng.normal(0, 1, x.size)
        d = relative_change(x, xp, reference_dbm=-110.0)
        assert d >= 0.0

    def test_triangle_like_monotonicity(self):
        # Larger perturbations give larger relative change.
        x = np.full(20, -70.0)
        small = relative_change(x, x - 1.0, reference_dbm=-110.0)
        big = relative_change(x, x - 10.0, reference_dbm=-110.0)
        assert big > small
