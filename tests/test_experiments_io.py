"""Tests for repro.experiments.io: trace persistence."""

import numpy as np
import pytest

from repro.experiments.io import load_scan, load_track, save_scan, save_track


class TestScanRoundtrip:
    def test_roundtrip(self, tmp_path, shared_pair):
        path = tmp_path / "scan.npz"
        save_scan(path, shared_pair.rear.scan)
        loaded = load_scan(path)
        orig = shared_pair.rear.scan
        assert np.array_equal(loaded.times_s, orig.times_s)
        assert np.array_equal(loaded.channel_indices, orig.channel_indices)
        assert np.array_equal(loaded.rssi_dbm, orig.rssi_dbm)
        assert loaded.plan.n_channels == orig.plan.n_channels
        assert np.array_equal(loaded.plan.arfcns, orig.plan.arfcns)
        assert loaded.plan.scan_time_s == orig.plan.scan_time_s

    def test_loaded_scan_drives_pipeline(self, tmp_path, shared_pair, shared_engine):
        path = tmp_path / "scan.npz"
        save_scan(path, shared_pair.rear.scan)
        loaded = load_scan(path)
        traj = shared_engine.build_trajectory(
            loaded, shared_pair.rear.estimated, at_time_s=200.0
        )
        direct = shared_engine.build_trajectory(
            shared_pair.rear.scan, shared_pair.rear.estimated, at_time_s=200.0
        )
        assert np.allclose(traj.power_dbm, direct.power_dbm, equal_nan=True)

    def test_version_check(self, tmp_path, shared_pair):
        path = tmp_path / "scan.npz"
        save_scan(path, shared_pair.rear.scan)
        with np.load(path) as data:
            contents = {k: data[k] for k in data.files}
        contents["format_version"] = np.int64(99)
        np.savez_compressed(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_scan(path)


class TestTrackRoundtrip:
    def test_roundtrip(self, tmp_path, shared_pair):
        path = tmp_path / "track.npz"
        save_track(path, shared_pair.rear.estimated)
        loaded = load_track(path)
        orig = shared_pair.rear.estimated
        assert np.array_equal(loaded.times_s, orig.times_s)
        assert np.array_equal(loaded.distance_m, orig.distance_m)
        assert np.array_equal(loaded.heading_rad, orig.heading_rad)

    def test_version_check(self, tmp_path, shared_pair):
        path = tmp_path / "track.npz"
        save_track(path, shared_pair.rear.estimated)
        with np.load(path) as data:
            contents = {k: data[k] for k in data.files}
        contents["format_version"] = np.int64(99)
        np.savez_compressed(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_track(path)
