"""Tests for repro.core.syn and repro.core.resolver."""

import numpy as np
import pytest

from repro.core.config import RupsConfig
from repro.core.resolver import (
    AGGREGATORS,
    aggregate_estimates,
    resolve_relative_distance,
)
from repro.core.syn import SynPoint, find_syn_points, seek_syn_point
from repro.core.trajectory import GeoTrajectory, GsmTrajectory


def synthetic_pair(
    gap_m: float = 30.0,
    n_channels: int = 20,
    front_len: int = 501,
    rear_len: int = 401,
    noise: float = 1.0,
    seed: int = 0,
):
    """Two trajectories sampled from one synthetic 'road field'.

    The front vehicle's context ends ``gap_m`` ahead of the rear's.  Both
    carry the same per-channel field (AR(1)-ish random walk smoothed) plus
    independent noise.  Odometer origins differ so the test also covers
    mismatched start distances.
    """
    rng = np.random.default_rng(seed)
    gap = int(round(gap_m))
    # Shift everything so the front context (which may be longer than the
    # rear one) stays within the synthetic road.
    offset = max(0, front_len - rear_len - gap) + 50
    road_len = offset + rear_len + gap + 200
    field = np.cumsum(rng.normal(0, 1.0, size=(n_channels, road_len)), axis=1)
    field = field - field.mean(axis=1, keepdims=True) + rng.normal(
        -80, 6, size=(n_channels, 1)
    )

    # Rear context covers road positions [offset, offset + rear_len);
    # front covers [front_hi - front_len, front_hi).
    front_hi = offset + rear_len + gap
    front_lo = front_hi - front_len
    assert front_lo >= 0

    def traj(lo, hi, start_distance, seed2):
        r2 = np.random.default_rng(seed2)
        power = field[:, lo:hi] + r2.normal(0, noise, size=(n_channels, hi - lo))
        n = hi - lo
        geo = GeoTrajectory(
            timestamps_s=np.linspace(0.0, 60.0, n),
            headings_rad=np.zeros(n),
            spacing_m=1.0,
            start_distance_m=start_distance,
        )
        return GsmTrajectory(power, np.arange(n_channels), geo)

    rear = traj(offset, offset + rear_len, 1000.0, seed + 1)
    front = traj(front_lo, front_hi, 5000.0, seed + 2)
    return rear, front


CFG = RupsConfig(
    context_length_m=500.0,
    window_length_m=60.0,
    window_channels=20,
    coherency_threshold=1.2,
    n_syn_points=5,
    syn_stride_m=20.0,
)


class TestSeekSynPoint:
    def test_finds_overlap(self):
        rear, front = synthetic_pair(gap_m=30.0)
        syn = seek_syn_point(rear, front, CFG)
        assert syn is not None
        assert syn.score > 1.2
        # rear's most recent context is inside front's trajectory, so the
        # rear-side query wins and the rear offset is ~0.
        assert syn.own_offset_m == pytest.approx(0.0, abs=2.0)
        assert syn.other_offset_m == pytest.approx(30.0, abs=2.0)

    def test_unrelated_rejected(self):
        rear, _ = synthetic_pair(seed=1)
        _, other_road_front = synthetic_pair(seed=77)
        syn = seek_syn_point(rear, other_road_front, CFG)
        assert syn is None

    def test_requires_matching_channels(self):
        rear, front = synthetic_pair()
        mismatched = front.select_channels(front.channel_ids[:-1])
        with pytest.raises(ValueError, match="channel"):
            seek_syn_point(rear, mismatched, CFG)

    def test_requires_matching_spacing(self):
        rear, front = synthetic_pair()
        geo2 = GeoTrajectory(
            timestamps_s=front.geo.timestamps_s,
            headings_rad=front.geo.headings_rad,
            spacing_m=2.0,
            start_distance_m=front.geo.start_distance_m,
        )
        front2 = GsmTrajectory(front.power_dbm, front.channel_ids, geo2)
        with pytest.raises(ValueError, match="spacing"):
            seek_syn_point(rear, front2, CFG)

    def test_flexible_window_short_context(self):
        rear, front = synthetic_pair(gap_m=10.0)
        short_rear = rear.tail(15.0)  # only 15 m of context
        cfg = RupsConfig(
            context_length_m=500.0,
            window_length_m=60.0,
            window_channels=20,
            flexible_window=True,
            min_window_length_m=10.0,
            min_coherency_threshold=0.8,
        )
        syn = seek_syn_point(short_rear, front, cfg)
        assert syn is not None
        assert syn.window_length_m <= 15.0

    def test_rigid_window_short_context_fails(self):
        rear, front = synthetic_pair(gap_m=10.0)
        short_rear = rear.tail(15.0)
        cfg = RupsConfig(
            context_length_m=500.0,
            window_length_m=60.0,
            window_channels=20,
            flexible_window=False,
        )
        assert seek_syn_point(short_rear, front, cfg) is None

    def test_symmetric_result(self):
        # Swapping own/other flips offsets but names the same location.
        rear, front = synthetic_pair(gap_m=40.0)
        a = seek_syn_point(rear, front, CFG)
        b = seek_syn_point(front, rear, CFG)
        assert a is not None and b is not None
        assert a.own_distance_m == pytest.approx(b.other_distance_m, abs=1.0)
        assert a.other_distance_m == pytest.approx(b.own_distance_m, abs=1.0)


class TestFindSynPoints:
    def test_multiple_points(self):
        rear, front = synthetic_pair(gap_m=25.0)
        syns = find_syn_points(rear, front, CFG)
        assert 2 <= len(syns) <= 5
        # all consistent with the true gap
        for s in syns:
            assert resolve_relative_distance(s) == pytest.approx(25.0, abs=3.0)

    def test_unrelated_returns_empty(self):
        rear, _ = synthetic_pair(seed=5)
        _, other = synthetic_pair(seed=99)
        assert find_syn_points(rear, other, CFG) == []

    def test_n_points_override(self):
        rear, front = synthetic_pair(gap_m=25.0)
        syns = find_syn_points(rear, front, CFG, n_points=2)
        assert len(syns) <= 2

    def test_invalid_n_points(self):
        rear, front = synthetic_pair()
        with pytest.raises(ValueError):
            find_syn_points(rear, front, CFG, n_points=0)


class TestResolver:
    def _syn(self, own_off, other_off, score=1.5):
        return SynPoint(
            score=score,
            own_distance_m=100.0,
            other_distance_m=200.0,
            own_offset_m=own_off,
            other_offset_m=other_off,
            window_length_m=60.0,
            query_side="own",
        )

    def test_resolve_sign_convention(self):
        # Other travelled 30 m past the SYN point, we travelled 0 -> other
        # is 30 m ahead.
        assert resolve_relative_distance(self._syn(0.0, 30.0)) == pytest.approx(30.0)
        assert resolve_relative_distance(self._syn(30.0, 0.0)) == pytest.approx(-30.0)

    def test_aggregate_single(self):
        syns = [self._syn(0, 10), self._syn(0, 99)]
        assert aggregate_estimates(syns, "single") == pytest.approx(10.0)

    def test_aggregate_mean(self):
        syns = [self._syn(0, 10), self._syn(0, 20), self._syn(0, 30)]
        assert aggregate_estimates(syns, "mean") == pytest.approx(20.0)

    def test_aggregate_selective_trims_extremes(self):
        syns = [self._syn(0, v) for v in (10, 12, 14, 11, 99)]
        # drop min (10) and max (99): mean of 11, 12, 14
        assert aggregate_estimates(syns, "selective") == pytest.approx(
            (11 + 12 + 14) / 3
        )

    def test_selective_degrades_to_mean_below_three(self):
        syns = [self._syn(0, 10), self._syn(0, 20)]
        assert aggregate_estimates(syns, "selective") == pytest.approx(15.0)

    def test_selective_robust_to_outlier(self):
        clean = [self._syn(0, v) for v in (20, 21, 19, 20)]
        dirty = clean + [self._syn(0, 90)]
        sel = aggregate_estimates(dirty, "selective")
        mean = aggregate_estimates(dirty, "mean")
        assert abs(sel - 20.0) < abs(mean - 20.0)

    def test_empty_returns_none(self):
        assert aggregate_estimates([], "mean") is None

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            aggregate_estimates([self._syn(0, 1)], "median-of-medians")

    def test_registry_complete(self):
        assert set(AGGREGATORS) == {"single", "mean", "selective"}
