"""Tests for the §VII extension features: multi-band plans, the FM
preset, receiver saturation, and the pedestrian pedometer."""

import numpy as np
import pytest

from repro.gsm.band import EVAL_SUBSET_115, FM_BAND, RGSM900, combine_plans
from repro.gsm.field import FieldConfig, make_straight_field
from repro.gsm.propagation import received_power_dbm
from repro.roads.types import RoadType
from repro.sensors import DeadReckoner, Pedometer
from repro.vehicles.kinematics import constant_speed_profile, urban_speed_profile


class TestCombinePlans:
    def test_concatenates(self):
        combined = combine_plans(EVAL_SUBSET_115, FM_BAND)
        assert combined.n_channels == 115 + 206
        assert np.all(np.isin(EVAL_SUBSET_115.arfcns, combined.arfcns))
        assert np.all(np.isin(FM_BAND.arfcns, combined.arfcns))

    def test_total_sweep_time_preserved(self):
        combined = combine_plans(EVAL_SUBSET_115, FM_BAND)
        assert combined.full_scan_time_s == pytest.approx(
            EVAL_SUBSET_115.full_scan_time_s + FM_BAND.full_scan_time_s
        )

    def test_collision_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            combine_plans(RGSM900, EVAL_SUBSET_115)

    def test_needs_two(self):
        with pytest.raises(ValueError):
            combine_plans(RGSM900)

    def test_name(self):
        combined = combine_plans(EVAL_SUBSET_115, FM_BAND, name="multi")
        assert combined.name == "multi"

    def test_fm_arfcns_offset(self):
        assert FM_BAND.arfcns.min() >= 10_000


class TestAutoPropagation:
    def test_auto_picks_hata_for_gsm(self):
        auto = received_power_dbm(1000.0, 900e6, model="auto")
        hata = received_power_dbm(1000.0, 900e6, model="cost231")
        assert auto == pytest.approx(hata)

    def test_auto_falls_back_for_fm(self):
        auto = received_power_dbm(1000.0, 95e6, model="auto")
        logd = received_power_dbm(1000.0, 95e6, model="log-distance")
        assert auto == pytest.approx(logd)

    def test_fm_field_builds(self):
        field = make_straight_field(
            200.0, RoadType.URBAN_4LANE, plan=FM_BAND, seed=1
        )
        snap = field.snapshot(time_s=0.0)
        assert np.all(np.isfinite(snap))

    def test_combined_field_builds(self):
        plan = combine_plans(EVAL_SUBSET_115, FM_BAND)
        field = make_straight_field(200.0, plan=plan, seed=1)
        assert field.n_channels == 321


class TestReceiverCeiling:
    def test_ceiling_clips(self):
        field = make_straight_field(
            200.0,
            RoadType.URBAN_4LANE,
            plan=FM_BAND,
            seed=2,
            config=FieldConfig(rx_ceiling_dbm=-20.0),
        )
        snap = field.snapshot(time_s=0.0)
        assert snap.max() <= -20.0

    def test_ceiling_validation(self):
        with pytest.raises(ValueError):
            FieldConfig(rx_ceiling_dbm=-120.0)


class TestPedometer:
    def test_step_count(self):
        walk = constant_speed_profile(100.0, 1.4)  # 140 m
        ped = Pedometer(stride_m=0.7, miss_prob=0.0, double_count_prob=0.0)
        ticks = ped.sample(walk, rng=0)
        assert len(ticks.tick_times_s) == 200

    def test_distance_estimate_with_calibration_bias(self):
        walk = constant_speed_profile(100.0, 1.4)
        ped = Pedometer(
            stride_m=0.7, calibration_error=0.06, miss_prob=0.0, double_count_prob=0.0
        )
        ticks = ped.sample(walk, rng=0)
        rel = abs(ticks.total_distance_m - walk.distance_m) / walk.distance_m
        assert rel == pytest.approx(0.06, abs=0.01)

    def test_misses_reduce_ticks(self):
        walk = constant_speed_profile(200.0, 1.4)
        clean = Pedometer(miss_prob=0.0, double_count_prob=0.0).sample(walk, rng=1)
        lossy = Pedometer(miss_prob=0.2, double_count_prob=0.0).sample(walk, rng=1)
        assert len(lossy.tick_times_s) < len(clean.tick_times_s)

    def test_double_counts_increase_ticks(self):
        walk = constant_speed_profile(200.0, 1.4)
        clean = Pedometer(miss_prob=0.0, double_count_prob=0.0).sample(walk, rng=2)
        doubled = Pedometer(miss_prob=0.0, double_count_prob=0.3).sample(walk, rng=2)
        assert len(doubled.tick_times_s) > len(clean.tick_times_s)

    def test_feeds_dead_reckoner(self):
        walk = urban_speed_profile(300.0, 1.5, rng=3, mean_fraction=0.85)
        ped = Pedometer()
        ticks = ped.sample(walk, rng=3)
        t = np.arange(walk.t0, walk.t1, 0.5)
        track = DeadReckoner().estimate(t, np.zeros(t.size), ticks)
        est = track.distance_m[-1] - track.distance_m[0]
        assert est == pytest.approx(walk.distance_m, rel=0.12)

    def test_validation(self):
        with pytest.raises(ValueError):
            Pedometer(stride_m=0.0)
        with pytest.raises(ValueError):
            Pedometer(miss_prob=1.0)
        with pytest.raises(ValueError):
            Pedometer(calibration_error=-0.1)

    def test_tick_times_sorted(self):
        walk = urban_speed_profile(200.0, 1.4, rng=4, mean_fraction=0.85)
        ticks = Pedometer(double_count_prob=0.2).sample(walk, rng=4)
        assert np.all(np.diff(ticks.tick_times_s) >= 0)
