"""Tests for repro.baselines.gps_rdf."""

import numpy as np
import pytest

from repro.baselines.gps_rdf import GpsRdfBaseline
from repro.roads.geometry import Polyline
from repro.sensors.gps import GpsTrack


def make_track(times, xs, valid=None):
    times = np.asarray(times, dtype=float)
    xs = np.asarray(xs, dtype=float)
    positions = np.stack([xs, np.zeros_like(xs)], axis=1)
    if valid is None:
        valid = np.ones(times.size, dtype=bool)
    positions = positions.copy()
    positions[~valid] = np.nan
    return GpsTrack(times_s=times, positions=positions, valid=valid)


ROAD = Polyline(np.array([[0.0, 0.0], [10_000.0, 0.0]]))


class TestGpsRdfBaseline:
    def test_exact_fixes_exact_distance(self):
        t = np.arange(0.0, 10.0)
        front = make_track(t, 100.0 + 10.0 * t)
        rear = make_track(t, 70.0 + 10.0 * t)
        est = GpsRdfBaseline().estimate(front, rear, np.array([5.0]), ROAD)
        assert est[0] == pytest.approx(30.0)

    def test_uses_latest_fix_before_query(self):
        t = np.arange(0.0, 10.0)
        front = make_track(t, 100.0 + 10.0 * t)
        rear = make_track(t, 70.0 + 10.0 * t)
        # query between fixes: uses fix at t=5 for both
        est = GpsRdfBaseline().estimate(front, rear, np.array([5.9]), ROAD)
        assert est[0] == pytest.approx(30.0)

    def test_stale_fix_rejected(self):
        t = np.arange(0.0, 3.0)
        front = make_track(t, 100.0 + 10.0 * t)
        rear = make_track(t, 70.0 + 10.0 * t)
        est = GpsRdfBaseline(max_fix_age_s=2.0).estimate(
            front, rear, np.array([10.0]), ROAD
        )
        assert np.isnan(est[0])

    def test_invalid_fixes_skipped(self):
        t = np.arange(0.0, 10.0)
        valid = np.ones(10, dtype=bool)
        valid[5:] = False
        front = make_track(t, 100.0 + 10.0 * t, valid)
        rear = make_track(t, 70.0 + 10.0 * t)
        # at t=9, front's last valid fix is t=4 (age 5 > max 3) -> NaN
        est = GpsRdfBaseline(max_fix_age_s=3.0).estimate(
            front, rear, np.array([9.0]), ROAD
        )
        assert np.isnan(est[0])

    def test_noise_propagates_to_error(self):
        rng = np.random.default_rng(0)
        t = np.arange(0.0, 100.0)
        true_front = 100.0 + 10.0 * t
        true_rear = 70.0 + 10.0 * t
        front = make_track(t, true_front + rng.normal(0, 8.0, t.size))
        rear = make_track(t, true_rear + rng.normal(0, 8.0, t.size))
        est = GpsRdfBaseline().estimate(front, rear, t + 0.1, ROAD)
        errs = np.abs(est - 30.0)
        # error scale ~ sqrt(2)*8*sqrt(2/pi) ~ 9 m
        assert 5.0 < np.nanmean(errs) < 14.0

    def test_availability(self):
        t = np.arange(0.0, 10.0)
        valid = np.ones(10, dtype=bool)
        valid[::2] = False
        front = make_track(t, 100.0 + 10.0 * t, valid)
        rear = make_track(t, 70.0 + 10.0 * t)
        avail = GpsRdfBaseline(max_fix_age_s=0.5).availability(
            front, rear, t + 0.1
        )
        assert avail == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            GpsRdfBaseline(max_fix_age_s=0.0)
