"""Property tests for the content-addressed shared-statics store.

The store's contract (``repro/runtime/shared.py``) has three legs the
pooled campaign leans on:

* **Content keys are structural and cross-process stable** — two
  processes independently building a bit-identical payload derive the
  same key, and any bit flip changes it.
* **Checkouts are read-only** — a worker mutating a checked-out array
  must fail loudly, never corrupt the one shared copy.
* **Eviction never costs correctness** — under an adversarially small
  LRU budget every checkout still returns the published bytes; evicted
  entries simply reload from the spool.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.runtime import DeterministicExecutor, fixed_chunks, shared


@pytest.fixture(autouse=True)
def _fresh_store():
    """Isolate every test from process-resident cache state."""
    shared.clear()
    previous = shared.set_budgets(cache=64, derived_cache=32)
    yield
    shared.set_budgets(*previous)
    shared.clear()


@dataclasses.dataclass(frozen=True)
class _Payload:
    """A toy heavy static: arrays + metadata, like a drive record."""

    power: np.ndarray
    label: str
    meta: dict


def _make_payload(seed: int) -> _Payload:
    rng = np.random.default_rng(seed)
    return _Payload(
        power=rng.normal(size=(4, 32)),
        label=f"payload-{seed}",
        meta={"seed": seed, "channels": (1, 2, 3)},
    )


# -- task functions: module level so they pickle into spawn workers ----

def _key_task(seed: int) -> str:
    return shared.content_key(_make_payload(seed))


def _mutate_array_task(ref: shared.SharedRef) -> str:
    arr = shared.checkout(ref)
    try:
        arr[0, 0] = -1.0
        return "mutated"
    except ValueError:
        return "readonly"


def _object_array_task(ref: shared.SharedRef) -> str:
    payload = shared.checkout(ref)
    try:
        payload.power[0, 0] = -1.0
        return "mutated"
    except ValueError:
        return "readonly"


def _checkout_sum_task(ref: shared.SharedRef) -> float:
    return float(np.sum(shared.checkout(ref)))


class TestContentKeys:
    def test_stable_across_processes(self):
        """A spawn worker derives the very same key the parent does."""
        local = [_key_task(seed) for seed in (3, 4)]
        with DeterministicExecutor(jobs=2) as ex:
            remote = ex.map_ordered(_key_task, [3, 4])
        assert remote == local

    def test_distinct_payloads_distinct_keys(self):
        base = _make_payload(0)
        flipped = dataclasses.replace(
            base, power=base.power + np.finfo(float).eps
        )
        assert shared.content_key(base) != shared.content_key(flipped)
        assert shared.content_key(base) == shared.content_key(_make_payload(0))

    def test_dict_key_order_insensitive(self):
        assert shared.content_key({"a": 1, "b": 2.0}) == shared.content_key(
            {"b": 2.0, "a": 1}
        )

    def test_type_tags_disambiguate(self):
        assert shared.content_key(1) != shared.content_key(1.0)
        assert shared.content_key(1) != shared.content_key("1")
        assert shared.content_key(True) != shared.content_key(1)

    def test_nan_payloads_hash_stably(self):
        a = np.array([1.0, np.nan, 3.0])
        assert shared.content_key(a) == shared.content_key(a.copy())

    def test_cyclic_payload_rejected(self):
        loop: list = []
        loop.append(loop)
        with pytest.raises(ValueError, match="cyclic"):
            shared.content_key(loop)


class TestReadOnlyCheckout:
    def test_array_checkout_read_only_in_publisher(self):
        arr = np.arange(12.0).reshape(3, 4)
        ref = shared.publish(arr)
        out = shared.checkout(ref)
        with pytest.raises(ValueError):
            out[0, 0] = 99.0
        assert arr[0, 0] == 0.0

    def test_array_checkout_read_only_cross_process(self):
        with DeterministicExecutor(jobs=2) as ex:
            ref = ex.publish(np.arange(12.0).reshape(3, 4))
            verdicts = ex.map_ordered(_mutate_array_task, [ref, ref])
        assert verdicts == ["readonly", "readonly"]

    def test_object_arrays_frozen_cross_process(self):
        with DeterministicExecutor(jobs=2) as ex:
            ref = ex.publish(_make_payload(7))
            verdicts = ex.map_ordered(_object_array_task, [ref, ref])
        assert verdicts == ["readonly", "readonly"]

    def test_fresh_load_is_read_only_too(self):
        """Not just the seeded cache view: a reload from spool is frozen."""
        ref = shared.publish(np.ones(5))
        shared.clear()
        out = shared.checkout(ref)
        with pytest.raises(ValueError):
            out[0] = 2.0


class TestPublishCheckout:
    def test_publish_idempotent_same_ref(self):
        payload = _make_payload(1)
        ref1 = shared.publish(payload)
        ref2 = shared.publish(payload)
        assert ref1 == ref2

    def test_republish_preserves_object_identity(self):
        """Bit-identical republish checks out the original object.

        This is what keeps identity-keyed caches (engine trajectory /
        binding-index slots) hot across warm re-runs: the store returns
        one canonical object per content key per process.
        """
        payload = _make_payload(2)
        ref = shared.publish(payload)
        clone = _make_payload(2)
        assert clone is not payload
        assert shared.publish(clone) == ref
        assert shared.checkout(ref) is payload

    def test_checkout_round_trips_values(self):
        payload = _make_payload(5)
        ref = shared.publish(payload)
        shared.clear()  # force a spool reload in "another process"
        out = shared.checkout(ref)
        assert out is not payload
        np.testing.assert_array_equal(out.power, payload.power)
        assert out.label == payload.label and out.meta == payload.meta

    def test_resolve_passthrough(self):
        assert shared.resolve(41) == 41
        payload = _make_payload(6)
        assert shared.resolve(payload) is payload
        ref = shared.publish(payload)
        assert shared.resolve(ref) is shared.checkout(ref)

    def test_cross_process_checkout_values(self):
        arr = np.linspace(0.0, 1.0, 101)
        with DeterministicExecutor(jobs=2) as ex:
            ref = ex.publish(arr)
            sums = ex.map_ordered(_checkout_sum_task, [ref, ref])
        assert sums == [float(np.sum(arr))] * 2


class TestEviction:
    def test_tiny_budget_still_correct(self):
        """With a 2-slot cache, every checkout still returns the right
        bytes — older refs just reload from the spool."""
        shared.set_budgets(cache=2)
        arrays = [np.full(8, float(i)) for i in range(5)]
        refs = [shared.publish(a) for a in arrays]
        assert shared.cache_info()["cache"] <= 2
        for i, ref in enumerate(refs):
            np.testing.assert_array_equal(shared.checkout(ref), arrays[i])

    def test_derived_builds_once_then_hits(self):
        builds = []

        def builder():
            builds.append(1)
            return {"built": len(builds)}

        first = shared.derived("k", builder)
        again = shared.derived("k", builder)
        assert first is again and builds == [1]

    def test_derived_eviction_rebuilds(self):
        shared.set_budgets(derived_cache=1)
        a1 = shared.derived("a", lambda: ["a"])
        shared.derived("b", lambda: ["b"])  # evicts "a"
        a2 = shared.derived("a", lambda: ["a"])
        assert a2 == a1 and a2 is not a1
        assert shared.cache_info()["derived"] == 1

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            shared.set_budgets(cache=0)
        with pytest.raises(ValueError):
            shared.set_budgets(derived_cache=0)


class TestFixedChunks:
    """`fixed_chunks` layout must depend only on (len(items), size)."""

    def test_ragged_tail(self):
        assert fixed_chunks(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_single_and_oversized(self):
        assert fixed_chunks([1], 5) == [[1]]
        assert fixed_chunks([], 4) == [[]]

    def test_prime_sizes(self):
        items = list(range(13))
        chunks = fixed_chunks(items, 5)
        assert [len(c) for c in chunks] == [5, 5, 3]
        assert [x for c in chunks for x in c] == items

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            fixed_chunks([1, 2], 0)
