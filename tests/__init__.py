"""Test suite for the RUPS reproduction.

This file makes ``tests`` a package so shared helpers (e.g. the
``synthetic_pair`` builder in ``test_core_syn_resolver``) can be imported
across test modules under both ``pytest`` and ``python -m pytest``.
"""
