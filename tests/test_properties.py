"""Cross-cutting property-based tests on core data structures/invariants.

Complements the per-module suites with randomized structural checks:
trajectory container algebra, codec fuzzing, eq.-2 identities, and
aggregation-scheme invariants.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    sliding_trajectory_correlation,
    trajectory_correlation,
)
from repro.core.resolver import AGGREGATORS
from repro.core.trajectory import GeoTrajectory, GsmTrajectory
from repro.v2v.serialization import decode_trajectory, encode_trajectory
from repro.v2v.wsm import fragment_payload, reassemble


def traj_strategy(draw):
    n_ch = draw(st.integers(2, 12))
    n_marks = draw(st.integers(3, 60))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    geo = GeoTrajectory(
        timestamps_s=np.sort(rng.uniform(0.0, 500.0, n_marks)),
        headings_rad=rng.uniform(-np.pi, np.pi, n_marks),
        spacing_m=float(draw(st.sampled_from([0.5, 1.0, 2.0]))),
        start_distance_m=float(draw(st.floats(0.0, 5000.0))),
    )
    return GsmTrajectory(
        power_dbm=rng.uniform(-109.0, -45.0, size=(n_ch, n_marks)),
        channel_ids=np.arange(n_ch),
        geo=geo,
    )


trajectories = st.builds(lambda d: d, st.data()).map(lambda _: None)  # unused


class TestTrajectoryAlgebra:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_tail_preserves_recent_content(self, data):
        traj = traj_strategy(data.draw)
        keep_m = data.draw(
            st.floats(2 * traj.spacing_m, max(traj.length_m, 2 * traj.spacing_m))
        )
        tail = traj.tail(keep_m)
        assert tail.geo.end_distance_m == pytest.approx(traj.geo.end_distance_m)
        assert np.array_equal(tail.power_dbm, traj.power_dbm[:, -tail.n_marks :])
        assert tail.n_marks <= traj.n_marks

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_slice_then_distances_consistent(self, data):
        traj = traj_strategy(data.draw)
        assume(traj.n_marks >= 4)
        start = data.draw(st.integers(0, traj.n_marks - 3))
        stop = data.draw(st.integers(start + 2, traj.n_marks))
        part = traj.slice_marks(start, stop)
        assert part.geo.distances_m[0] == pytest.approx(
            traj.geo.distances_m[start]
        )
        assert part.geo.distances_m[-1] == pytest.approx(
            traj.geo.distances_m[stop - 1]
        )

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_select_channels_permutation_roundtrip(self, data):
        traj = traj_strategy(data.draw)
        perm = np.random.default_rng(
            data.draw(st.integers(0, 1000))
        ).permutation(traj.channel_ids)
        selected = traj.select_channels(perm)
        back = selected.select_channels(traj.channel_ids)
        assert np.array_equal(back.power_dbm, traj.power_dbm)


class TestCodecProperties:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_quantization_bound(self, data):
        traj = traj_strategy(data.draw)
        decoded = decode_trajectory(encode_trajectory(traj))
        assert np.max(np.abs(decoded.power_dbm - traj.power_dbm)) <= 0.25
        assert decoded.geo.spacing_m == traj.geo.spacing_m

    @given(st.binary(min_size=0, max_size=512))
    @settings(max_examples=50, deadline=None)
    def test_decode_garbage_raises_cleanly(self, junk):
        with pytest.raises(ValueError):
            decode_trajectory(junk)

    @given(st.binary(min_size=1, max_size=40_000), st.integers(0, 2**15))
    @settings(max_examples=25, deadline=None)
    def test_fragmentation_roundtrip_any_payload(self, payload, msg_id):
        packets = fragment_payload(payload, message_id=msg_id)
        assert reassemble(packets) == payload

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_reassemble_any_order(self, data):
        payload = data.draw(st.binary(min_size=3000, max_size=10_000))
        packets = fragment_payload(payload)
        order = data.draw(st.permutations(range(len(packets))))
        shuffled = [packets[i] for i in order]
        assert reassemble(shuffled) == payload


class TestEq2Identities:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 10), st.integers(4, 40))
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, seed, n_ch, n_marks):
        rng = np.random.default_rng(seed)
        a = rng.normal(-80, 5, size=(n_ch, n_marks))
        b = rng.normal(-80, 5, size=(n_ch, n_marks))
        assert trajectory_correlation(a, b) == pytest.approx(
            trajectory_correlation(b, a), abs=1e-12
        )

    @given(
        st.integers(0, 2**31 - 1),
        st.floats(0.05, 20.0),
        st.floats(-50.0, 50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_affine_offset_scale_invariance_both_sides(self, seed, gain, offset):
        # Uniform positive rescaling / offset of the raw RSSI — a fixed
        # receiver gain or calibration bias — must not change eq. 2, on
        # whichever side (or both) it is applied.
        rng = np.random.default_rng(seed)
        a = rng.normal(-80, 5, size=(6, 20))
        b = rng.normal(-80, 5, size=(6, 20))
        base = trajectory_correlation(a, b)
        assert trajectory_correlation(gain * a + offset, b) == pytest.approx(
            base, abs=1e-9
        )
        assert trajectory_correlation(a, gain * b + offset) == pytest.approx(
            base, abs=1e-9
        )
        assert trajectory_correlation(
            gain * a + offset, gain * b + offset
        ) == pytest.approx(base, abs=1e-9)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 10), st.integers(2, 40))
    @settings(max_examples=40, deadline=None)
    def test_value_bounds(self, seed, n_ch, n_marks):
        # Each Pearson term lies in [-1, 1], so eq. 2 is within [-2, 2];
        # for a single channel the cross-channel profile is degenerate
        # (zero by convention), leaving a plain Pearson in [-1, 1].
        rng = np.random.default_rng(seed)
        a = rng.normal(-80, 5, size=(n_ch, n_marks))
        b = rng.normal(-80, 5, size=(n_ch, n_marks))
        r = trajectory_correlation(a, b)
        assert np.isfinite(r)
        assert -2.0 - 1e-9 <= r <= 2.0 + 1e-9
        if n_ch == 1:
            assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

    @given(st.integers(0, 2**31 - 1), st.integers(2, 10), st.integers(4, 40))
    @settings(max_examples=25, deadline=None)
    def test_affine_invariance(self, seed, n_ch, n_marks):
        # eq. 2 is invariant to per-channel affine rescaling with positive
        # gain (Pearson terms are; the row-mean term shifts but stays
        # within bounds for uniform gain).
        rng = np.random.default_rng(seed)
        a = rng.normal(-80, 5, size=(n_ch, n_marks))
        b = rng.normal(-80, 5, size=(n_ch, n_marks))
        base = trajectory_correlation(a, b)
        scaled = trajectory_correlation(2.0 * a + 7.0, b)
        assert scaled == pytest.approx(base, abs=1e-9)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_sliding_agrees_with_direct_everywhere(self, seed):
        rng = np.random.default_rng(seed)
        target = rng.normal(-80, 6, size=(5, 40))
        query = rng.normal(-80, 6, size=(5, 12))
        scores = sliding_trajectory_correlation(query, target)
        for p in range(scores.size):
            assert scores[p] == pytest.approx(
                trajectory_correlation(query, target[:, p : p + 12]), abs=1e-9
            )


class TestSlidingSearchProperties:
    @given(st.integers(0, 2**31 - 1), st.sampled_from(["reference", "batched"]))
    @settings(max_examples=30, deadline=None)
    def test_score_vector_spans_exactly_the_valid_positions(self, seed, kernel):
        rng = np.random.default_rng(seed)
        n_ch = int(rng.integers(1, 8))
        m = int(rng.integers(4, 80))
        w = int(rng.integers(2, m + 1))
        target = rng.normal(-80, 6, size=(n_ch, m))
        query = rng.normal(-80, 6, size=(n_ch, w))
        scores = sliding_trajectory_correlation(query, target, kernel=kernel)
        assert scores.shape == (m - w + 1,)
        assert 0 <= int(np.argmax(scores)) <= m - w
        assert np.all(np.isfinite(scores))

    @given(st.integers(0, 2**31 - 1), st.sampled_from(["reference", "batched"]))
    @settings(max_examples=20, deadline=None)
    def test_syn_windows_always_inside_both_trajectories(self, seed, kernel):
        from repro.core.config import RupsConfig
        from repro.core.syn import find_syn_points

        from tests.test_kernel_equivalence import random_scenario

        own, other, cfg = random_scenario(seed)
        config = RupsConfig(kernel=kernel, **cfg)
        for syn in find_syn_points(own, other, config):
            for traj, end_distance in (
                (own, syn.own_distance_m),
                (other, syn.other_distance_m),
            ):
                assert (
                    traj.geo.start_distance_m + syn.window_length_m
                    <= end_distance + 1e-9
                )
                assert end_distance <= traj.geo.end_distance_m + 1e-9


class TestAggregatorProperties:
    @given(
        st.lists(st.floats(-100.0, 100.0, allow_nan=False), min_size=1, max_size=12)
    )
    @settings(max_examples=40, deadline=None)
    def test_all_schemes_within_sample_range(self, values):
        arr = np.array(values)
        for name, fn in AGGREGATORS.items():
            out = fn(arr)
            assert arr.min() - 1e-9 <= out <= arr.max() + 1e-9, name

    @given(
        st.lists(st.floats(-100.0, 100.0, allow_nan=False), min_size=3, max_size=12),
        st.floats(500.0, 1e4),
    )
    @settings(max_examples=40, deadline=None)
    def test_selective_bounded_by_outlier_less_than_mean(self, values, outlier):
        # Adding one huge outlier moves the selective average by no more
        # than it moves the plain mean.
        base = np.array(values)
        dirty = np.append(base, outlier)
        clean_center = float(np.mean(base))
        d_sel = abs(AGGREGATORS["selective"](dirty) - clean_center)
        d_mean = abs(AGGREGATORS["mean"](dirty) - clean_center)
        assert d_sel <= d_mean + 1e-9
