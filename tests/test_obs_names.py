"""CI lint: every metric emit site uses a name declared in repro.obs.names.

Metric names are stringly-typed at the emit site, so a rename or typo
silently forks a series.  This lint extracts every string literal passed
to ``inc`` / ``observe`` / ``set_gauge`` across ``src/`` (method calls
included — the regex matches ``registry.inc(...)`` too) and checks it
against the canonical registry:

* a plain literal must be registered exactly or by prefix family;
* an f-string's static prefix must match a registered prefix family
  (dynamic families are declared as prefixes, never left open);
* conversely, every registered exact name must still appear as a quoted
  literal somewhere in ``src/`` — dead registry entries are failures
  too, not dashboard folklore.
"""

import re
from pathlib import Path

import pytest

from repro.obs import names

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Matches inc("...") / observe(f"...") / registry.set_gauge("..."),
#: tolerating newlines between the call and its first argument; the
#: literal capture stops at the first ``{`` so an f-string yields its
#: static prefix.
_EMIT = re.compile(r'\b(inc|observe|set_gauge)\s*\(\s*(f?)"([^"{]*)')

_FAMILY = {
    "inc": (names.is_registered_counter, names.COUNTER_PREFIXES),
    "observe": (names.is_registered_histogram, names.HISTOGRAM_PREFIXES),
    "set_gauge": (names.is_registered_gauge, names.GAUGE_PREFIXES),
}


def _source_files():
    files = [p for p in sorted(SRC.rglob("*.py")) if p.name != "names.py"]
    assert files, f"no sources under {SRC}"
    return files


def _emit_sites():
    sites = []
    for path in _source_files():
        text = path.read_text()
        for match in _EMIT.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            func, is_fstring, literal = match.groups()
            sites.append((path, line, func, bool(is_fstring), literal))
    return sites


class TestEmitSitesAreRegistered:
    def test_scan_finds_the_emit_sites(self):
        # The lint is only as good as its extraction: prove it sees the
        # known corners — multiline literals, f-string families, and
        # method calls on explicit registries.
        sites = _emit_sites()
        assert len(sites) > 50
        literals = {literal for *_, literal in sites}
        assert "fleet.query_latency_s" in literals  # multiline observe(
        assert "span." in literals  # f-string family
        assert "slo." in literals  # method call on a registry

    def test_every_emit_site_uses_a_declared_name(self):
        violations = []
        for path, line, func, is_fstring, literal in _emit_sites():
            is_registered, prefixes = _FAMILY[func]
            if is_fstring:
                ok = bool(literal) and any(
                    literal.startswith(p) or p.startswith(literal)
                    for p in prefixes
                )
            else:
                ok = is_registered(literal)
            if not ok:
                violations.append(
                    f"{path.relative_to(SRC.parent.parent)}:{line}: "
                    f"{func}({'f' if is_fstring else ''}\"{literal}...\") "
                    f"not declared in repro.obs.names"
                )
        assert not violations, "\n".join(violations)

    def test_no_registered_name_is_dead(self):
        # Every exact entry must still appear as a quoted literal in
        # src/ (conditional emits pass string literals the emit-site
        # regex cannot see, so this scans for the quoted name itself).
        corpus = "\n".join(p.read_text() for p in _source_files())
        dead = [
            name
            for family in (names.COUNTERS, names.HISTOGRAMS, names.GAUGES)
            for name in sorted(family)
            if f'"{name}"' not in corpus
        ]
        assert not dead, f"registered but unused: {dead}"

    def test_every_prefix_family_has_an_emit_site(self):
        fstring_prefixes = {
            literal
            for _, _, _, is_fstring, literal in _emit_sites()
            if is_fstring
        }
        for prefixes in (
            names.COUNTER_PREFIXES,
            names.HISTOGRAM_PREFIXES,
            names.GAUGE_PREFIXES,
        ):
            for prefix in prefixes:
                assert any(
                    literal.startswith(prefix) or prefix.startswith(literal)
                    for literal in fstring_prefixes
                ), f"registered family {prefix!r} has no f-string emit site"


class TestRegistryHelpers:
    @pytest.mark.parametrize(
        "checker,exact,prefixed",
        [
            (
                names.is_registered_counter,
                "fleet.queries",
                "engine.cache.reduction.hit",
            ),
            (
                names.is_registered_histogram,
                "fleet.query_latency_s",
                "span.syn.search",
            ),
            (
                names.is_registered_gauge,
                "fleet.store.vehicles",
                "slo.fleet_query_p99.burn",
            ),
        ],
    )
    def test_exact_and_prefix_matching(self, checker, exact, prefixed):
        assert checker(exact)
        assert checker(prefixed)
        assert not checker("totally.unknown.series")

    def test_families_are_disjoint_kinds(self):
        assert not names.COUNTERS & names.HISTOGRAMS
        assert not names.COUNTERS & names.GAUGES
        assert not names.HISTOGRAMS & names.GAUGES
