"""§VII extension — multi-band sensing ablation.

The paper's future work: "we will further improve the accuracy of RUPS
by involving other ambient wireless signals such as the 3G/4G, FM and TV
bands."  This bench quantifies the trade-off our plan-agnostic stack
exposes: adding FM channels widens the fingerprint (more diversity) but
lengthens the sweep (more missing channels at speed).  With a single
radio — the regime where the trade-off bites — the combined plan must at
least match GSM-only matching robustness.

Also covers the context-length ablation from DESIGN.md (§V-B's "reduce
the context scope" mitigation): accuracy vs exchanged context length.
"""

import numpy as np

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.experiments.traces import drive_pair
from repro.gsm.band import EVAL_SUBSET_115, FM_BAND, combine_plans
from repro.roads.types import RoadType
from repro.util.rng import RngFactory


def _mean_rde(plan, seed: int, n_queries: int = 30, n_radios: int = 1):
    pair = drive_pair(
        road_type=RoadType.URBAN_4LANE,
        duration_s=420.0,
        n_radios=n_radios,
        plan=plan,
        seed=seed,
    )
    engine = RupsEngine(RupsConfig())
    rng = RngFactory(seed).generator("queries")
    times = rng.uniform(*pair.query_window(1000.0), size=n_queries)
    errs, unresolved = [], 0
    for tq in times:
        own = engine.build_trajectory(pair.rear.scan, pair.rear.estimated, at_time_s=tq)
        other = engine.build_trajectory(
            pair.front.scan, pair.front.estimated, at_time_s=tq
        )
        est = engine.estimate_relative_distance(own, other)
        if est.resolved:
            errs.append(abs(est.distance_m - pair.scenario.true_relative_distance(tq)))
        else:
            unresolved += 1
    return (
        float(np.mean(errs)) if errs else float("nan"),
        unresolved,
        n_queries,
    )


def test_multiband_ablation(benchmark, record_result):
    def run():
        rows = []
        for label, plan in (
            ("GSM 115 ch", EVAL_SUBSET_115),
            ("FM 206 ch", FM_BAND),
            ("GSM+FM 321 ch", combine_plans(EVAL_SUBSET_115, FM_BAND)),
        ):
            mean, unresolved, total = _mean_rde(plan, seed=4321)
            rows.append((label, plan.n_channels, mean, unresolved, total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["SVII extension — multi-band ablation (1 radio, 4-lane urban):"]
    lines.append("  plan          | channels | mean RDE (m) | unresolved")
    for label, n_ch, mean, unresolved, total in rows:
        lines.append(
            f"  {label:13s} | {n_ch:8d} | {mean:12.2f} | {unresolved}/{total}"
        )
    record_result("ext-multiband", "\n".join(lines))

    by_label = {r[0]: r for r in rows}
    # Every plan must keep the matcher functional.
    for label, _, mean, unresolved, total in rows:
        assert unresolved < total // 2, label
        assert np.isfinite(mean)
    # The combined plan must be competitive with the best single band
    # (within 2x) — diversity compensates the longer sweep.
    best_single = min(by_label["GSM 115 ch"][2], by_label["FM 206 ch"][2])
    assert by_label["GSM+FM 321 ch"][2] < 2.0 * best_single


def test_context_length_ablation(benchmark, record_result):
    """RDE and resolution vs exchanged context length (SV-B mitigation)."""

    def run():
        pair = drive_pair(
            road_type=RoadType.URBAN_4LANE,
            duration_s=420.0,
            n_radios=4,
            plan=EVAL_SUBSET_115,
            seed=888,
        )
        rng = RngFactory(9).generator("ctx")
        times = rng.uniform(*pair.query_window(1000.0), size=30)
        rows = []
        for context_m in (150.0, 300.0, 600.0, 1000.0):
            engine = RupsEngine(RupsConfig(context_length_m=context_m))
            errs, unresolved = [], 0
            for tq in times:
                own = engine.build_trajectory(
                    pair.rear.scan, pair.rear.estimated, at_time_s=tq
                )
                other = engine.build_trajectory(
                    pair.front.scan, pair.front.estimated, at_time_s=tq
                )
                est = engine.estimate_relative_distance(own, other)
                if est.resolved:
                    errs.append(
                        abs(est.distance_m - pair.scenario.true_relative_distance(tq))
                    )
                else:
                    unresolved += 1
            from repro.v2v.exchange import estimate_exchange_time

            _, _, xfer_s = estimate_exchange_time(context_m, 115)
            rows.append(
                (
                    context_m,
                    float(np.mean(errs)) if errs else float("nan"),
                    unresolved,
                    xfer_s,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["SV-B ablation — context length vs accuracy vs exchange time:"]
    lines.append("  context (m) | mean RDE (m) | unresolved/30 | exchange (s)")
    for context_m, mean, unresolved, xfer_s in rows:
        lines.append(
            f"  {context_m:11.0f} | {mean:12.2f} | {unresolved:13d} | {xfer_s:12.3f}"
        )
    record_result("ext-context", "\n".join(lines))

    # Shorter contexts are much cheaper to exchange...
    assert rows[0][3] < rows[-1][3] / 4
    # ...and even 150 m context keeps RUPS functional (heavy-traffic mode).
    assert rows[0][2] <= 10
    # Accuracy does not collapse at short contexts (within 3x of full).
    assert rows[0][1] < 3.0 * rows[-1][1] + 1.0
