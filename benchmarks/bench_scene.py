"""§I / §V headline — end-to-end query response time.

"RUPS ... can answer arbitrary relative distance queries in about 0.5s"
(§I), decomposed by the paper into a ~0.52 s context exchange (§V-B) and
~1.2 ms of matching (§V-A).  This bench runs a three-vehicle convoy and
accounts both terms for real on every query.
"""

import numpy as np

from repro.experiments.scene import build_convoy_scene
from repro.gsm.band import RGSM900


def test_end_to_end_response_time(benchmark, record_result):
    def run():
        scene = build_convoy_scene(
            n_vehicles=3,
            duration_s=420.0,
            plan=RGSM900,  # full 194-channel band: the paper's 182 KB case
            seed=12,
        )
        rows = []
        for tq in np.linspace(180.0, 410.0, 8):
            est, latency = scene.query(1, 0, float(tq))
            err = (
                abs(est.distance_m - scene.true_distance(1, 0, float(tq)))
                if est.resolved
                else float("nan")
            )
            rows.append((float(tq), latency.comm_s, latency.compute_s, err))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "SI headline — end-to-end query response time (3-vehicle convoy,",
        "194-channel context, contended channel):",
        "  t (s) | comm (s) | compute (s) | RDE (m)",
    ]
    for tq, comm, compute, err in rows:
        lines.append(f"  {tq:5.0f} | {comm:8.3f} | {compute:11.4f} | {err:7.2f}")
    comm = np.array([r[1] for r in rows])
    compute = np.array([r[2] for r in rows])
    total = comm + compute
    lines.append(
        f"  mean total {np.mean(total):.3f} s "
        f"(comm {np.mean(comm):.3f} + compute {np.mean(compute):.4f})"
    )
    record_result("t-headline", "\n".join(lines))

    # The paper's decomposition: communication dominates (3x floor keeps
    # the check robust on loaded CI machines; typical ratio is ~15-20x).
    assert np.mean(comm) > 3 * np.mean(compute)
    # ...and the total sits near the ~0.5 s headline (2 contenders add
    # ~30% over the paper's single-pair measurement).
    assert 0.3 < np.mean(total) < 1.5
    # Accuracy holds along the whole drive.
    errs = np.array([r[3] for r in rows])
    assert np.nanmean(errs) < 6.0
