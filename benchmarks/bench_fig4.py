"""Fig 4 — fine resolution: relative change of power vectors vs distance.

Regenerates the mean eq.-3 relative change over separations of 1-120 m.
Shape assertions per §III-D: already substantial at 1 m (the paper reads
~0.4; our synthetic field lands in the same regime) and slowly rising
with distance.
"""

import numpy as np

from repro.experiments.empirical import fig4_resolution


def test_fig4_resolution(benchmark, record_result):
    result = benchmark.pedantic(
        fig4_resolution,
        kwargs={"n_vectors": 600, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result("fig4", result.render())

    mean = result.mean_relative_change
    # Substantial change already at 1 m separation (fine resolution).
    assert mean[0] > 0.2
    # Rising with distance, gently (paper: "slightly rises").
    assert mean[-1] > mean[0]
    assert mean[-1] < 3 * mean[0]
    # Monotone-ish: smoothed curve increases.
    smooth = np.convolve(mean, np.ones(15) / 15, mode="valid")
    assert np.all(np.diff(smooth) > -0.01)
    # Scatter exists and is positive.
    assert result.scatter_values.size > 100
    assert np.all(result.scatter_values >= 0)
