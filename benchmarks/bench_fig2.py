"""Fig 2 — temporal stability of GSM power vectors.

Regenerates P(correlation >= threshold) vs time difference for the four
paper configurations and asserts the three observations of §III-B:

1. at the 0.9 threshold, the full band is *less* stable than a
   10-channel subset (individual channels do vary);
2. at the 0.8 threshold, stability stays high (>= ~0.9) out to 25 min;
3. at the 0.8 threshold, more channels means more stability.
"""

import numpy as np

from repro.experiments.empirical import fig2_temporal_stability


def test_fig2_temporal_stability(benchmark, record_result):
    result = benchmark.pedantic(
        fig2_temporal_stability,
        kwargs={"n_locations": 16, "pairs_per_lag": 96, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result("fig2", result.render())

    c = result.curves
    full_08 = c["corr>=0.8, 194 ch"]
    full_09 = c["corr>=0.9, 194 ch"]
    sub_08 = c["corr>=0.8, 10 ch"]
    sub_09 = c["corr>=0.9, 10 ch"]

    # Observation 2: high stability at 0.8/194 over the whole range.
    assert np.min(full_08) >= 0.80
    # Observation 3: at 0.8, full band beats the subset (on average).
    assert np.mean(full_08) > np.mean(sub_08)
    # Observation 1: at 0.9, the subset beats the full band (on average).
    assert np.mean(sub_09) > np.mean(full_09)
    # And stability decays (weakly) with time difference at 0.9/194.
    assert full_09[0] >= full_09[-1]
