"""§V-B — responding time and system scalability.

Regenerates the exchange-cost table (paper: 1 km context = ~182 KB =
~130 WSM packets = ~0.52 s at 4 ms RTT) and the post-SYN incremental-
update table, plus micro-benchmarks of the codec (serialization is on
the critical path of every broadcast).
"""

import numpy as np
import pytest

from repro.core.trajectory import GeoTrajectory, GsmTrajectory
from repro.experiments.timing import response_time_table
from repro.v2v.channel import DsrcChannel
from repro.v2v.serialization import decode_trajectory, encode_trajectory


def _paper_scale_trajectory() -> GsmTrajectory:
    rng = np.random.default_rng(0)
    n_ch, n_marks = 194, 1001
    geo = GeoTrajectory(
        timestamps_s=np.linspace(0.0, 100.0, n_marks),
        headings_rad=np.zeros(n_marks),
    )
    return GsmTrajectory(
        power_dbm=rng.uniform(-109, -50, size=(n_ch, n_marks)),
        channel_ids=np.arange(n_ch),
        geo=geo,
    )


def test_response_time_table(benchmark, record_result):
    result = benchmark.pedantic(response_time_table, rounds=1, iterations=1)
    record_result("t-respond", result.render())

    # Paper anchor: 1 km / 194 channels within 15% of 182 KB and ~0.52 s.
    row_1km_194 = result.rows[0]
    assert row_1km_194[3] == pytest.approx(182.0, rel=0.15)  # KB
    assert row_1km_194[5] == pytest.approx(0.52, rel=0.20)  # nominal s
    # Incremental updates are >= 2 orders of magnitude cheaper than the
    # initial full sync.
    full_bytes = result.incremental_rows[0][2]
    inc_bytes = result.incremental_rows[1][2]
    assert inc_bytes < full_bytes / 100


def test_encode_trajectory_speed(benchmark):
    traj = _paper_scale_trajectory()
    data = benchmark(encode_trajectory, traj)
    assert len(data) > 100_000


def test_decode_trajectory_speed(benchmark):
    data = encode_trajectory(_paper_scale_trajectory())
    traj = benchmark(decode_trajectory, data)
    assert traj.n_channels == 194


def test_transfer_simulation_speed(benchmark):
    data = encode_trajectory(_paper_scale_trajectory())
    channel = DsrcChannel()
    result = benchmark(channel.transfer_bytes, data, 7)
    assert result.delivered
