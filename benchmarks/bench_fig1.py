"""Fig 1 — example GSM-aware trajectories (two roads, one entered twice).

Regenerates the figure's data: three 194-channel spectrograms over 150 m
and the trajectory correlations that make the figure's point (same road
at different times ~ similar; different roads ~ distinct).
"""

from repro.experiments.empirical import fig1_spectrograms


def test_fig1_spectrograms(benchmark, record_result):
    result = benchmark.pedantic(fig1_spectrograms, rounds=1, iterations=1)
    record_result("fig1", result.render())
    # Shape assertions: the qualitative claim of the figure.
    assert result.same_road_correlation > 1.0
    assert result.cross_road_correlation < 0.5
    assert result.road_a_entry1.shape == (194, 151)
