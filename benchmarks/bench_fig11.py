"""Fig 11 — average errors under dynamic environments and radio configs.

Regenerates the environment x radio-configuration grid of mean RDE and
SYN error with 95% confidence intervals.  Shape assertions: stable
performance across same-lane environments (paper: <= 4.5 m); the best
config is 4 front radios; distinct lanes degrade matching accuracy.
"""

import numpy as np

from repro.experiments.evaluation import EvalSettings, fig11_environments

SETTINGS = EvalSettings(n_drives=3, queries_per_drive=40, seed=3)


def test_fig11_grid(benchmark, record_result):
    result = benchmark.pedantic(
        fig11_environments, kwargs={"settings": SETTINGS}, rounds=1, iterations=1
    )
    record_result("fig11", result.render())

    rows = {(r["config"], r["environment"]): r for r in result.rows}

    same_lane_envs = ["2-lane, suburb", "4-lane, same lane", "8-lane, same lane"]
    best = [rows[("4 front, 4 front", env)] for env in same_lane_envs]
    # Paper: "both SYN point and resolved relative distance errors are
    # below 4.5m on average over all road conditions" (same lane).
    for r in best:
        assert r["rde_mean"] < 4.5
        assert r["syn_mean"] < 4.5
        assert r["resolution_rate"] > 0.95

    # 4 front radios match at least as well as 1 front radio (SYN error).
    for env in same_lane_envs:
        assert (
            rows[("4 front, 4 front", env)]["syn_mean"]
            <= rows[("1 front, 1 front", env)]["syn_mean"] * 1.1
        )

    # Distinct lanes: matching degrades (larger SYN error or frequent
    # failures), as in the paper's ~10 m distinct-lane bars.
    distinct = rows[("4 front, 4 front", "8-lane, distinct lanes")]
    same = rows[("4 front, 4 front", "8-lane, same lane")]
    assert (
        distinct["syn_mean"] > same["syn_mean"]
        or distinct["resolution_rate"] < same["resolution_rate"] * 0.9
    )
