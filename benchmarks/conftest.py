"""Benchmark harness helpers.

Each paper artifact (figure / §V table) has one bench module.  Heavy
experiment harnesses run exactly once per session
(``benchmark.pedantic(rounds=1)``) — they are *regeneration* targets, not
micro-benchmarks — and their rendered series are written to
``benchmarks/results/<id>.txt`` as well as echoed to stdout (visible with
``pytest -s``).  Kernel benches (the SYN search, binding, codec) use the
normal pytest-benchmark statistics.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write an experiment's rendered output to its results file."""

    def _record(exp_id: str, text: str) -> None:
        path = results_dir / f"{exp_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
