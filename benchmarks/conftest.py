"""Benchmark harness helpers.

Each paper artifact (figure / §V table) has one bench module.  Heavy
experiment harnesses run exactly once per session
(``benchmark.pedantic(rounds=1)``) — they are *regeneration* targets, not
micro-benchmarks — and their rendered series are written to
``benchmarks/results/<id>.txt`` as well as echoed to stdout (visible with
``pytest -s``).  Kernel benches (the SYN search, binding, codec) use the
normal pytest-benchmark statistics.

Every bench also runs against a fresh :class:`repro.obs.MetricsRegistry`
(autouse fixture), and :func:`record_result` dumps that registry's
snapshot to ``benchmarks/results/<id>.metrics.json`` next to the text
result — cache hit rates, SYN counters and per-stage span histograms for
exactly the run that produced the recorded numbers.  The ``.txt`` files
are committed; the ``.metrics.json`` files are regenerated artifacts and
gitignored.

A bench that passes headline ``timings`` to :func:`record_result` also
appends a compact trend snapshot (timings + the run's counters) to
``benchmarks/history/BENCH_<id>.json``; ``python -m repro.obs.trend``
then diffs the last two entries and fails CI when a timing regressed
beyond its tolerance band.  The history files *are* committed — they are
the baseline the comparer needs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.obs.trend import append_snapshot

RESULTS_DIR = Path(__file__).parent / "results"
HISTORY_DIR = Path(__file__).parent / "history"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Scope each bench's metrics to its own registry."""
    with use_registry(MetricsRegistry()) as registry:
        yield registry


@pytest.fixture
def record_result(results_dir):
    """Write an experiment's rendered output + metrics snapshot.

    ``timings`` (headline seconds, e.g. ``{"legacy_s": 12.3}``) opts the
    bench into the trend history under ``benchmarks/history/``.
    """

    def _record(
        exp_id: str, text: str, timings: dict[str, float] | None = None
    ) -> None:
        path = results_dir / f"{exp_id}.txt"
        path.write_text(text + "\n")
        snapshot = get_registry().snapshot()
        metrics_path = results_dir / f"{exp_id}.metrics.json"
        metrics_path.write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"\n{text}\n[written to {path}; metrics in {metrics_path}]")
        if timings is not None:
            history_path = HISTORY_DIR / f"BENCH_{exp_id}.json"
            append_snapshot(
                str(history_path), timings, counters=snapshot["counters"]
            )
            print(f"[trend snapshot appended to {history_path}]")

    return _record
