"""Benchmark harness helpers.

Each paper artifact (figure / §V table) has one bench module.  Heavy
experiment harnesses run exactly once per session
(``benchmark.pedantic(rounds=1)``) — they are *regeneration* targets, not
micro-benchmarks — and their rendered series are written to
``benchmarks/results/<id>.txt`` as well as echoed to stdout (visible with
``pytest -s``).  Kernel benches (the SYN search, binding, codec) use the
normal pytest-benchmark statistics.

Every bench also runs against a fresh :class:`repro.obs.MetricsRegistry`
(autouse fixture), and :func:`record_result` dumps that registry's
snapshot to ``benchmarks/results/<id>.metrics.json`` next to the text
result — cache hit rates, SYN counters and per-stage span histograms for
exactly the run that produced the recorded numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, get_registry, use_registry

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Scope each bench's metrics to its own registry."""
    with use_registry(MetricsRegistry()) as registry:
        yield registry


@pytest.fixture
def record_result(results_dir):
    """Write an experiment's rendered output + metrics snapshot."""

    def _record(exp_id: str, text: str) -> None:
        path = results_dir / f"{exp_id}.txt"
        path.write_text(text + "\n")
        metrics_path = results_dir / f"{exp_id}.metrics.json"
        metrics_path.write_text(
            json.dumps(get_registry().snapshot(), indent=2) + "\n"
        )
        print(f"\n{text}\n[written to {path}; metrics in {metrics_path}]")

    return _record
