"""Streaming hot-path contract: incremental updates vs rebuild-per-update.

The performance contract of the ISSUE-8 streaming pipeline, recorded to
``benchmarks/results/t-stream.txt``:

* Replaying a >= 2000-mark drive one tracking period at a time through
  :meth:`RupsTracker.stream_update` (resident builder + anchored suffix
  search) must beat the naive rebuild-per-update baseline — a fresh
  cache-disabled engine binding the *entire* accumulated scan stream
  and running the full double-sided estimate at every tick — by >= 10x
  mean wall clock per update.
* The baseline is sampled (it is quadratic in drive length by
  construction); the incremental path is timed over every event.

Correctness is not asserted here — ``tests/test_streaming_prefix.py``
proves the incremental path bit-identical to batch rebuilds; this file
only guards the speed that justifies it.
"""

import time

import numpy as np
import pytest

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.core.tracking import RupsTracker
from repro.core.trajectory import TrajectoryBuilder
from repro.experiments.stream import event_grid
from repro.experiments.traces import drive_pair
from repro.gsm.band import RGSM900
from repro.roads.types import RoadType
from repro.sensors.deadreckoning import EstimatedTrack

UPDATE_PERIOD_S = 0.5
MIN_MARKS = 2000
N_BASELINE_SAMPLES = 8


@pytest.fixture(scope="module")
def stream_inputs():
    plan = RGSM900.subset(np.arange(0, RGSM900.n_channels, 5), name="bench-39")
    # Paper-default geometry (1 km context, 85 m windows): the contract is
    # measured at the scale the tracker actually runs, not the reduced
    # fixtures the unit tests use for speed.
    config = RupsConfig()
    pair = drive_pair(
        road_type=RoadType.URBAN_4LANE,
        duration_s=300.0,
        n_radios=4,
        plan=plan,
        seed=7,
    )
    return config, pair


def _cut(scan, trk: EstimatedTrack) -> int:
    return int(np.searchsorted(scan.times_s, float(trk.times_s[-1]), side="right"))


def test_stream_update_speedup_contract(record_result, stream_inputs):
    config, pair = stream_inputs
    rear, front = pair.rear, pair.front
    t0, t1 = pair.query_window(context_length_m=config.context_length_m)
    events = event_grid(t0, t1, UPDATE_PERIOD_S)

    # -- incremental: every event through the resident builders --------
    tracker = RupsTracker(config)
    peer = TrajectoryBuilder(
        spacing_m=config.spacing_m, context_length_m=config.context_length_m
    )
    rear_cut = front_cut = 0
    inc_times, resolved = [], 0
    for t in events:
        t = float(t)
        front_trk = front.estimated.until(t)
        rear_trk = rear.estimated.until(t)
        fb, rb = _cut(front.scan, front_trk), _cut(rear.scan, rear_trk)
        start = time.perf_counter()
        peer.append(front.scan.slice(front_cut, fb), front_trk)
        other = peer.trajectory()
        update = tracker.stream_update(
            rear.scan.slice(rear_cut, rb), rear_trk, other=other
        )
        inc_times.append(time.perf_counter() - start)
        front_cut, rear_cut = fb, rb
        resolved += update.estimate.resolved
    n_marks = tracker._builder._index._n_marks
    assert n_marks >= MIN_MARKS, (
        f"drive too short for the contract: {n_marks} marks < {MIN_MARKS}"
    )
    assert resolved >= 0.9 * len(events), "streaming replay failed to track"

    # -- baseline: rebuild everything from scratch at sampled events ---
    sample_idx = np.linspace(len(events) // 2, len(events) - 1, N_BASELINE_SAMPLES)
    base_times = []
    for i in sample_idx.astype(int):
        t = float(events[i])
        front_trk = front.estimated.until(t)
        rear_trk = rear.estimated.until(t)
        fb, rb = _cut(front.scan, front_trk), _cut(rear.scan, rear_trk)
        start = time.perf_counter()
        engine = RupsEngine(
            config, trajectory_cache_size=0, reduction_cache_size=0
        )
        own = engine.build_trajectory(rear.scan.slice(0, rb), rear_trk)
        other = engine.build_trajectory(front.scan.slice(0, fb), front_trk)
        estimate = engine.estimate_relative_distance(own, other)
        base_times.append(time.perf_counter() - start)
        assert estimate.resolved

    inc_mean = float(np.mean(inc_times))
    base_mean = float(np.mean(base_times))
    speedup = base_mean / inc_mean

    text = (
        "Streaming hot-path contract "
        f"({len(events)} events at {UPDATE_PERIOD_S} s period, "
        f"{n_marks} marks, {config.context_length_m:.0f} m context, 39-ch plan)\n"
        f"  rebuild-per-update baseline (sampled x{N_BASELINE_SAMPLES}): "
        f"{base_mean * 1e3:8.2f} ms/update\n"
        f"  incremental stream_update (all events):   "
        f"{inc_mean * 1e3:8.2f} ms/update\n"
        f"  p95 incremental update:                   "
        f"{float(np.percentile(inc_times, 95)) * 1e3:8.2f} ms\n"
        f"  resolved: {resolved}/{len(events)} events\n"
        f"  speedup: {speedup:.1f}x (contract: >= 10x at >= {MIN_MARKS} marks)"
    )
    record_result(
        "t-stream",
        text,
        timings={
            "baseline_update_s": base_mean,
            "incremental_update_s": inc_mean,
            # Percentiles feed the trend gate too: a tail regression
            # (lock losses forcing full searches) can hide in the mean.
            "incremental_p50_s": float(np.percentile(inc_times, 50)),
            "incremental_p95_s": float(np.percentile(inc_times, 95)),
            "incremental_p99_s": float(np.percentile(inc_times, 99)),
        },
    )

    assert speedup >= 10.0, (
        f"incremental speedup {speedup:.1f}x below the 10x contract "
        f"({base_mean * 1e3:.1f} ms rebuild vs {inc_mean * 1e3:.1f} ms streamed)"
    )
