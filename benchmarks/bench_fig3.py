"""Fig 3 — geographical uniqueness of GSM-aware trajectories.

Regenerates the CDFs of the eq.-2 trajectory correlation for same-road
different entries vs different roads (workday and weekend) and asserts
the figure's claim: the populations are well separated, with the 1.2
coherency threshold of §VI-B falling between them.
"""

import numpy as np

from repro.experiments.empirical import fig3_uniqueness


def test_fig3_uniqueness(benchmark, record_result):
    result = benchmark.pedantic(
        fig3_uniqueness, kwargs={"n_roads": 30, "seed": 0}, rounds=1, iterations=1
    )
    record_result("fig3", result.render())

    same = np.concatenate(
        [v for k, v in result.samples.items() if "entries" in k]
    )
    diff = np.concatenate([v for k, v in result.samples.items() if "roads" in k])
    # Well separated populations...
    assert result.separation_gap() > 0.2
    # ...with the paper's operating threshold between them.
    assert np.min(same) > 1.2
    assert np.max(diff) < 1.2
    # Different-road correlations centre near zero.
    assert abs(np.mean(diff)) < 0.25
