"""§VI-A methodology — the mixed-route trace campaign.

The paper's evaluation drives one 97 km route that "involves roads of
three general types" and slices results by setting.  This bench runs the
same design at city scale: one mixed route, repeated drives, query
outcomes bucketed by the road type under the vehicles — verifying that
RUPS stays stable across environments *within a single trace* (not just
across separately-built test tracks).
"""

import numpy as np

from repro.experiments.campaign import run_campaign


def test_mixed_route_campaign(benchmark, record_result):
    result = benchmark.pedantic(
        run_campaign,
        kwargs={
            "route_length_m": 5000.0,
            "n_drives": 3,
            "queries_per_drive": 40,
            "seed": 3,
        },
        rounds=1,
        iterations=1,
    )
    record_result("t-campaign", result.render())

    assert len(result.by_road_type) >= 2  # the route genuinely mixes
    pooled = result.pooled()
    assert pooled.n_queries == 3 * 40
    assert pooled.resolution_rate > 0.9
    # Stability across environments within one trace (paper SVI-C:
    # "RUPS can achieve very stable performance over different urban
    # environments"): no bucket with >= 10 queries strays beyond 3x the
    # pooled mean.
    pooled_mean = pooled.mean_rde()
    assert pooled_mean < 5.0
    for road_type, batch in result.by_road_type.items():
        if batch.n_resolved >= 10:
            assert batch.mean_rde() < 3.0 * pooled_mean + 1.0, road_type
