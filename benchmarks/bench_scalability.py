"""§V-B — system scalability under heavy traffic.

Regenerates the density sweep behind the paper's scalability argument:
with N vehicles sharing one DSRC channel, the time for a neighbourhood
to exchange full 1 km contexts grows super-linearly (contention x more
broadcasts), while the density-adaptive context scope ("the distances
between nearby vehicles also shrink when the traffic is heavy") keeps
the round inside a usable budget.
"""

import numpy as np

from repro.v2v.network import NeighborhoodExchange, adaptive_context_length


def test_density_sweep(benchmark, record_result):
    road_span_m = 1000.0

    def run():
        rows = []
        for n in (2, 5, 10, 20, 40):
            hood = NeighborhoodExchange(n_vehicles=n)
            fixed, adaptive = hood.fixed_vs_adaptive(road_span_m, rng=n)
            rows.append(
                (
                    n,
                    fixed.completion_time_s,
                    adaptive.context_length_m,
                    adaptive.completion_time_s,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "SV-B — neighbourhood exchange time vs vehicle density (1 km road):",
        "  vehicles | fixed 1km ctx (s) | adaptive ctx (m) | adaptive (s)",
    ]
    for n, t_fixed, ctx, t_adapt in rows:
        lines.append(
            f"  {n:8d} | {t_fixed:17.2f} | {ctx:16.0f} | {t_adapt:12.2f}"
        )
    record_result("t-scalability", "\n".join(lines))

    by_n = {r[0]: r for r in rows}
    # Fixed-context rounds blow up with density (contention x count)...
    assert by_n[40][1] > 20 * by_n[2][1]
    # ...while the adaptive scope shrinks with density per SV-B...
    assert by_n[40][2] < by_n[5][2]
    # ...and keeps even the 40-vehicle round within a few seconds.
    assert by_n[40][3] < 15.0
    # Adaptive never loses to fixed (5% slack for channel jitter when the
    # scopes coincide at low density).
    for n, t_fixed, _, t_adapt in rows:
        assert t_adapt <= 1.05 * t_fixed
