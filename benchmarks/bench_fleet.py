"""t-fleet service-path contract: query latency and throughput.

Replays a bench-scale fleet (20 vehicles, Poisson queries) through the
sharded :class:`~repro.fleet.FleetStore` + batched
:class:`~repro.fleet.FleetService` request path and records what a
deployment would alert on: query latency percentiles (submit -> answer,
from the service's local wall-clock registry) and answered queries per
second of service time.  The trend gate guards all four headline
timings — a p95 regression (sessions losing locks and falling back to
full searches, or the batching degenerating to per-query kernel calls)
can hide behind a healthy mean.

Correctness is not asserted here — ``tests/test_fleet.py`` proves the
service path bit-identical to a direct tracker loop and
``tests/test_runtime_determinism.py`` pins its jobs-invariance; this
file only guards the speed of the batched hot path (``jobs=1``: the
numbers must track kernel cost, not pool spawn overhead).
"""

import numpy as np

from repro.experiments.fleet import fleet_replay
from repro.gsm.band import RGSM900
from repro.obs import slo
from repro.obs.openmetrics import exposition, parse

N_VEHICLES = 20
DURATION_S = 160.0
QUERY_RATE_HZ = 6.0


def test_fleet_service_latency(record_result):
    plan = RGSM900.subset(np.arange(0, RGSM900.n_channels, 5), name="bench-39")
    result = fleet_replay(
        n_vehicles=N_VEHICLES,
        duration_s=DURATION_S,
        query_rate_hz=QUERY_RATE_HZ,
        plan=plan,
        seed=7,
        jobs=1,
    )
    assert result.n_queries > 100, "replay answered too few queries to time"
    assert result.queries_per_s > 0

    # The operational plane, exercised at bench scale: evaluate the
    # fleet SLOs over the replay's telemetry (latency histograms reach
    # here via the service's auxiliary registry) and prove the live
    # exposition we would serve from /metrics is well-formed.
    statuses = slo.evaluate(slo.gathered_snapshot())
    slo.set_slo_gauges(statuses)
    families = parse(exposition())
    assert "fleet_query_latency_s" in families
    assert any(name.startswith("slo_") for name in families)

    text = (
        f"{result.render()}\n"
        f"(bench scale: {N_VEHICLES} vehicles, {DURATION_S:.0f} s drives, "
        f"{QUERY_RATE_HZ:.0f}/s Poisson arrivals, 39-ch plan, jobs=1)\n\n"
        f"{slo.format_report(statuses)}"
    )
    record_result(
        "t-fleet",
        text,
        timings={
            "query_p50_s": result.latency_p50_s,
            "query_p95_s": result.latency_p95_s,
            "query_p99_s": result.latency_p99_s,
            # Reciprocal throughput, so the trend comparer's
            # "bigger = regression" convention applies unchanged.
            "per_query_s": 1.0 / result.queries_per_s,
        },
    )
