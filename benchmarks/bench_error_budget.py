"""Error-budget decomposition ablation (DESIGN.md §1.1).

Separates the two error families the reproduction identifies:

* **odometry warp** — OBD speedometer over-read distorting the distance
  domain (swap in the wheel encoder to remove most of it);
* **field decorrelation** — the per-vehicle parallax/micro multipath two
  radios never share (shrink it via FieldConfig to approach the
  matching-theoretic limit).

The stack ordering quantifies how much of the total RDE each source
contributes — the decomposition behind DESIGN.md's claim that OBD
odometry and vehicle parallax are the dominant knobs.
"""

import numpy as np

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.experiments.evaluation import run_queries
from repro.experiments.traces import drive_pair
from repro.gsm.band import EVAL_SUBSET_115
from repro.gsm.field import FieldConfig
from repro.roads.types import RoadType
from repro.util.rng import RngFactory


def _mean_rde(seed: int, odometry: str, field_config: FieldConfig | None):
    engine = RupsEngine(RupsConfig())
    pooled = []
    for d in range(2):
        pair = drive_pair(
            road_type=RoadType.URBAN_4LANE,
            duration_s=420.0,
            n_radios=4,
            plan=EVAL_SUBSET_115,
            seed=seed * 100 + d,
            odometry=odometry,
            field_config=field_config,
        )
        rng = RngFactory(seed).generator("queries", d)
        batch = run_queries(pair, 30, engine, rng, with_syn_errors=False)
        pooled.extend(batch.rde().tolist())
    return float(np.mean(pooled)), len(pooled)


def test_error_budget_decomposition(benchmark, record_result):
    clean_field = FieldConfig(
        micro_fraction=0.0,
        vehicle_skew_sigma_m=1e-9,
        noise_sigma_db=1.0,
    )

    def run():
        return {
            "full system (OBD odometry)": _mean_rde(11, "obd", None),
            "wheel odometry": _mean_rde(11, "wheel", None),
            "wheel + shared-field limit": _mean_rde(11, "wheel", clean_field),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["error-budget decomposition (4-lane urban, 4 front radios):"]
    for label, (mean, n) in out.items():
        lines.append(f"  {label:28s} mean RDE {mean:6.2f} m  (n={n})")
    full = out["full system (OBD odometry)"][0]
    wheel = out["wheel odometry"][0]
    limit = out["wheel + shared-field limit"][0]
    lines.append(
        f"  -> odometry warp contributes ~{full - wheel:.2f} m, "
        f"vehicle-field decorrelation ~{wheel - limit:.2f} m, "
        f"residual (binding/grid) ~{limit:.2f} m"
    )
    record_result("ext-error-budget", "\n".join(lines))

    # The stack must be ordered: each removed error source helps.
    assert full > wheel
    assert wheel > limit
    # The matching-theoretic limit is sub-metre (1 m binding grid).
    assert limit < 1.0
