"""Fig 10 — impact of passing vehicles: SYN aggregation schemes.

Regenerates the RDE CDFs for one-SYN, simple-average and selective-
average estimation on 8-lane urban roads with the blockage process
active.  Shape assertions per §VI-C: aggregation beats a single SYN
point, and the selective average has the lightest tail.
"""

import numpy as np

from repro.experiments.evaluation import EvalSettings, fig10_aggregation

SETTINGS = EvalSettings(n_drives=3, queries_per_drive=60, seed=2)


def _tail_p90(errs: np.ndarray) -> float:
    return float(np.percentile(errs, 90)) if errs.size else float("nan")


def test_fig10_aggregation_schemes(benchmark, record_result):
    result = benchmark.pedantic(
        fig10_aggregation, kwargs={"settings": SETTINGS}, rounds=1, iterations=1
    )
    record_result("fig10", result.render())

    single = result.rde["RUPS with one SYN point"]
    mean5 = result.rde["RUPS with average over 5 SYN points"]
    sel5 = result.rde["RUPS with selective average over 5 SYN points"]

    assert single.size and mean5.size and sel5.size

    def deep_tail(errs, thr=10.0):
        return float(np.mean(errs > thr))

    # The paper's core claim: the single-SYN scheme has the heavy
    # blockage-induced tail and aggregation trims it.
    assert deep_tail(sel5) <= deep_tail(single)
    assert deep_tail(mean5) <= deep_tail(single)
    assert deep_tail(sel5, 20.0) < deep_tail(single, 20.0)
    # Mean RDE ordering: selective < mean < single (10% slack on ties).
    assert np.mean(sel5) <= np.mean(single)
    assert np.mean(sel5) <= np.mean(mean5) * 1.1
    assert np.mean(mean5) <= np.mean(single) * 1.1
    # The selective average does not trade its tail robustness for a
    # worse bulk: its p90 stays near the single-SYN p90.  (The plain
    # mean does pay in the bulk — a corrupted SYN pollutes every
    # estimate it enters — which is exactly why the paper prefers the
    # selective variant.)
    assert _tail_p90(sel5) <= _tail_p90(single) * 1.2
