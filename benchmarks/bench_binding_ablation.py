"""§IV-C ablation — why trajectory binding exists.

"The retrieved power measurements, however, are time-domain signals,
which are inconvenient for comparison as vehicles may move in different
speeds."  This bench pits the full RUPS pipeline against the
time-domain matcher (identical eq.-2 machinery, no distance-domain
binding) on the same urban stop-and-go drives — quantifying the design
decision at the heart of §IV-C.
"""

import numpy as np

from repro.baselines.time_domain import TimeDomainMatcher
from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.experiments.traces import drive_pair
from repro.gsm.band import EVAL_SUBSET_115
from repro.roads.types import RoadType
from repro.util.rng import RngFactory


def test_binding_vs_time_domain(benchmark, record_result):
    def run():
        engine = RupsEngine(RupsConfig())
        matcher = TimeDomainMatcher()
        rows = []
        for d in range(2):
            pair = drive_pair(
                road_type=RoadType.URBAN_4LANE,
                duration_s=420.0,
                plan=EVAL_SUBSET_115,
                seed=7000 + d,
            )
            rng = RngFactory(d).generator("ablation-queries")
            t_lo, t_hi = pair.query_window(1000.0)
            for tq in rng.uniform(t_lo, t_hi, 25):
                truth = float(pair.scenario.true_relative_distance(tq))
                td = matcher.estimate(
                    pair.rear.scan, pair.rear.estimated, pair.front.scan, tq
                )
                own = engine.build_trajectory(
                    pair.rear.scan, pair.rear.estimated, at_time_s=tq
                )
                other = engine.build_trajectory(
                    pair.front.scan, pair.front.estimated, at_time_s=tq
                )
                rups = engine.estimate_relative_distance(own, other)
                rows.append(
                    (
                        abs(td.distance_m - truth) if td.resolved else None,
                        abs(rups.distance_m - truth) if rups.resolved else None,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    td_errs = np.array([r[0] for r in rows if r[0] is not None])
    rups_errs = np.array([r[1] for r in rows if r[1] is not None])
    n = len(rows)
    lines = [
        "SIV-C ablation — distance-domain binding vs raw time-domain matching",
        "(same eq.-2 machinery, urban stop-and-go, 4 radios):",
        f"  time-domain : resolved {td_errs.size}/{n}, "
        f"mean RDE {np.mean(td_errs) if td_errs.size else float('nan'):.2f} m",
        f"  RUPS binding: resolved {rups_errs.size}/{n}, "
        f"mean RDE {np.mean(rups_errs):.2f} m",
    ]
    record_result("ext-binding", "\n".join(lines))

    # Binding must resolve at least as often and be clearly more accurate.
    assert rups_errs.size >= td_errs.size
    assert rups_errs.size >= 0.9 * n
    if td_errs.size:
        assert np.mean(rups_errs) < np.mean(td_errs)
