"""Runtime speedup contract: parallel campaign + trajectory-build caching.

The performance contract of the ``repro.runtime`` stack, recorded to
``benchmarks/results/t-runtime.txt``:

* ``run_campaign`` with the runtime configuration — fused SYN kernel,
  engine binding/trajectory caches, shared-statics fan-out — must beat
  the legacy serial path (batched kernel, ``jobs=1``) by >= 2x wall
  clock.  The pooled variant is measured twice: cold (pool spawn +
  first-touch cache fills inside the timed region) and warm (a
  pre-spawned executor with resident caches), because the warm number
  is what a long campaign sweep actually pays per run.
* On hosts with >= 2 cores the warm pooled run must be no slower than
  the serial runtime variant, and on >= 4 cores it must win by >= 2x.
  On a single-core host the pool pays pure spawn overhead, so those
  assertions are skipped — and the skip is recorded honestly in the
  result text rather than silently passing.
* Repeated-query trajectory builds through the engine cache must beat
  cold per-query ``bind_scan`` by >= 5x (warm vs cold).

Every timed variant must also produce identical results — speed that
changed the answers would be a bug, not a win.
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.experiments.campaign import run_campaign
from repro.gsm.band import EVAL_SUBSET_115, RGSM900
from repro.gsm.field import make_straight_field
from repro.gsm.scanner import RadioGroup, scan_drive
from repro.roads.types import RoadType
from repro.runtime import DeterministicExecutor
from repro.sensors.deadreckoning import EstimatedTrack

CAMPAIGN_KWARGS = dict(
    route_length_m=6000.0, n_drives=4, queries_per_drive=12, seed=11
)


@pytest.fixture(scope="module")
def drive_inputs():
    field = make_straight_field(
        2000.0, RoadType.URBAN_4LANE, plan=EVAL_SUBSET_115, seed=0
    )
    group = RadioGroup(EVAL_SUBSET_115, n_radios=4)
    scan = scan_drive(
        field, lambda t: 10.0 * np.asarray(t), group, 0.0, 180.0, rng=0
    )
    t = np.arange(0.0, 180.0, 0.1)
    track = EstimatedTrack(
        times_s=t, distance_m=10.0 * t, heading_rad=np.zeros(t.size)
    )
    return scan, track


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_runtime_speedup_contract(record_result, drive_inputs):
    plan = RGSM900.subset(np.arange(0, RGSM900.n_channels, 4), name="bench-49")
    ncpu = os.cpu_count() or 1

    # -- campaign: legacy serial vs the parallel cached runtime --------
    legacy, legacy_s = _timed(
        lambda: run_campaign(
            plan=plan, config=RupsConfig(kernel="batched"), jobs=1, **CAMPAIGN_KWARGS
        )
    )
    serial_rt, serial_rt_s = _timed(
        lambda: run_campaign(
            plan=plan, config=RupsConfig(kernel="fused"), jobs=1, **CAMPAIGN_KWARGS
        )
    )
    pooled_cold, pooled_cold_s = _timed(
        lambda: run_campaign(
            plan=plan, config=RupsConfig(kernel="fused"), jobs=4, **CAMPAIGN_KWARGS
        )
    )
    with DeterministicExecutor(jobs=4) as executor:
        executor.warm_up()
        # Prime worker-resident caches (engines, published statics) the
        # way a campaign sweep's first run does, then time the steady
        # state the remaining runs pay.
        run_campaign(
            plan=plan,
            config=RupsConfig(kernel="fused"),
            executor=executor,
            **CAMPAIGN_KWARGS,
        )
        pooled, pooled_s = _timed(
            lambda: run_campaign(
                plan=plan,
                config=RupsConfig(kernel="fused"),
                executor=executor,
                **CAMPAIGN_KWARGS,
            )
        )
    renders = {
        legacy.render(),
        serial_rt.render(),
        pooled_cold.render(),
        pooled.render(),
    }
    assert len(renders) == 1, "runtime configurations changed campaign results"
    best_s = min(pooled_s, pooled_cold_s, serial_rt_s)
    campaign_speedup = legacy_s / best_s

    if ncpu >= 2:
        parallel_note = (
            f"  parallel payoff gate ({ncpu} cores): warm pooled "
            f"{pooled_s:.2f} s vs serial {serial_rt_s:.2f} s"
        )
    else:
        parallel_note = (
            "  parallel payoff gate: skipped (1-core host; the pool "
            "pays pure spawn overhead here)"
        )

    # -- repeated-query trajectory builds: warm cache vs cold binds ----
    scan, track = drive_inputs
    config = RupsConfig()
    instants = np.linspace(100.0, 175.0, 40)

    cold_engine = RupsEngine(config, trajectory_cache_size=0)
    cold, cold_s = _timed(
        lambda: [
            cold_engine.build_trajectory(scan, track, at_time_s=tq)
            for tq in instants
        ]
    )
    warm_engine = RupsEngine(config)
    indexed, indexed_s = _timed(
        lambda: [
            warm_engine.build_trajectory(scan, track, at_time_s=tq)
            for tq in instants
        ]
    )
    warm, warm_s = _timed(
        lambda: [
            warm_engine.build_trajectory(scan, track, at_time_s=tq)
            for tq in instants
        ]
    )
    for a, b, c in zip(cold, indexed, warm):
        assert np.array_equal(a.power_dbm, b.power_dbm, equal_nan=True)
        assert b is c  # the second pass is pure memo hits
    build_speedup = cold_s / warm_s

    text = (
        "Runtime speedup contract "
        f"(campaign: {CAMPAIGN_KWARGS['n_drives']} drives x "
        f"{CAMPAIGN_KWARGS['queries_per_drive']} queries, 49-ch plan)\n"
        f"  run_campaign legacy (batched, jobs=1):  {legacy_s:7.2f} s\n"
        f"  run_campaign runtime (fused, jobs=1):   {serial_rt_s:7.2f} s "
        f"({legacy_s / serial_rt_s:.2f}x)\n"
        f"  run_campaign runtime (fused, jobs=4, cold pool): "
        f"{pooled_cold_s:7.2f} s ({legacy_s / pooled_cold_s:.2f}x)\n"
        f"  run_campaign runtime (fused, jobs=4, warm pool): "
        f"{pooled_s:7.2f} s ({legacy_s / pooled_s:.2f}x)\n"
        f"  campaign speedup (best runtime variant): {campaign_speedup:.2f}x "
        "(contract: >= 2x vs legacy)\n"
        f"{parallel_note}\n"
        f"  trajectory builds, 40 instants x {config.context_length_m:.0f} m "
        "context:\n"
        f"    cold (bind_scan per query):     {cold_s * 1e3:8.1f} ms\n"
        f"    drive index (first pass):       {indexed_s * 1e3:8.1f} ms "
        f"({cold_s / indexed_s:.1f}x)\n"
        f"    warm (memoised second pass):    {warm_s * 1e3:8.1f} ms "
        f"({build_speedup:.1f}x)\n"
        f"  build speedup warm vs cold: {build_speedup:.1f}x (contract: >= 5x)"
    )
    record_result(
        "t-runtime",
        text,
        timings={
            "legacy_s": legacy_s,
            "pooled_s": pooled_s,
            "pooled_cold_s": pooled_cold_s,
            "serial_rt_s": serial_rt_s,
            "cold_build_s": cold_s,
            "warm_build_s": warm_s,
        },
    )

    assert campaign_speedup >= 2.0, (
        f"campaign runtime speedup {campaign_speedup:.2f}x below the 2x contract"
    )
    assert build_speedup >= 5.0, (
        f"trajectory build speedup {build_speedup:.1f}x below the 5x contract"
    )
    if ncpu >= 2:
        assert pooled_s <= serial_rt_s, (
            f"warm pooled campaign ({pooled_s:.2f} s) slower than the serial "
            f"runtime variant ({serial_rt_s:.2f} s) on a {ncpu}-core host"
        )
    if ncpu >= 4:
        assert serial_rt_s / pooled_s >= 2.0, (
            f"warm pooled speedup {serial_rt_s / pooled_s:.2f}x over serial "
            f"below the 2x contract on a {ncpu}-core host"
        )
