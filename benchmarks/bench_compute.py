"""§V-A — computational cost of the SYN search.

Two parts:

* a pytest-benchmark micro-benchmark of one full sliding SYN search at
  the paper's operating point (m = 1000 m context, w = 100 m window,
  k = 45 channels; the paper measured ~1.2 ms on an i7-2640M);
* the O(m*w*k) scaling sweep (each dimension doubled/halved), written to
  the results file, with linearity assertions.

Plus the binding-resolution ablation flagged in DESIGN.md.
"""

import numpy as np

from repro.experiments.timing import (
    _search_inputs,
    compute_cost_sweep,
    syn_search_seconds,
)
from repro.core.correlation import sliding_trajectory_correlation


def test_syn_search_paper_operating_point(benchmark):
    query, target = _search_inputs(m_marks=1000, w_marks=100, k_channels=45)
    benchmark(sliding_trajectory_correlation, query, target)
    # Comparable to the paper's 1.2 ms on 2011 hardware; we only bound it
    # loosely so slow CI machines do not flake.  (stats is None when run
    # with --benchmark-disable.)
    if benchmark.stats is not None:
        assert benchmark.stats.stats.mean < 0.05


def test_compute_cost_scaling(benchmark, record_result):
    result = benchmark.pedantic(compute_cost_sweep, rounds=1, iterations=1)
    record_result("t-compute", result.render())

    by_cfg = {(m, w, k): sec for m, w, k, sec in result.rows}
    base = by_cfg[(1000, 100, 45)]
    # Linear-ish in each dimension: doubling any one of m, w, k roughly
    # doubles the time.  Bounds are deliberately loose — wall-clock
    # micro-timings on shared machines jitter — the strong check is the
    # ns-per-mwk stability below.
    for double in ((2000, 100, 45), (1000, 200, 45), (1000, 100, 90)):
        ratio = by_cfg[double] / base
        assert 1.1 < ratio < 4.5, f"{double}: ratio {ratio:.2f}"
    for half in ((500, 100, 45), (1000, 50, 45), (1000, 100, 20)):
        assert by_cfg[half] < base * 1.3
    # O(m*w*k): normalized cost is flat across the sweep (CV bounded).
    per_mwk = np.array([sec / (m * w * k) for m, w, k, sec in result.rows])
    assert np.std(per_mwk) / np.mean(per_mwk) < 0.6


def test_binding_resolution_ablation(benchmark, record_result):
    """DESIGN.md ablation: SYN search cost vs binding grid resolution."""

    def run():
        rows = []
        for spacing in (1.0, 2.0, 5.0):
            m = int(1000 / spacing)
            w = int(100 / spacing)
            sec = syn_search_seconds(m_marks=m, w_marks=max(w, 2), k_channels=45)
            rows.append((spacing, m, sec))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["t-compute ablation — binding grid resolution:"]
    for spacing, m, sec in rows:
        lines.append(f"  {spacing:.0f} m marks ({m:4d} marks/km): {sec * 1e3:7.3f} ms per search")
    record_result("t-compute_ablation", "\n".join(lines))
    # Coarser grids are cheaper.
    assert rows[0][2] > rows[-1][2]
