"""Fig 12 — RUPS vs GPS under four urban environments.

Regenerates the headline comparison.  Shape assertions per §VI-D: RUPS
is stable across all environments while GPS degrades sharply under
elevated roads; the mean GPS/RUPS error ratio is well above 1 (paper:
2.7x on average; our GPS means land within ~10% of the paper's
4.2/9.9/9.8/21.1 m, our RUPS is somewhat better than theirs, so the
ratio comes out higher — see EXPERIMENTS.md).
"""

import numpy as np

from repro.experiments.evaluation import EvalSettings, fig12_vs_gps

SETTINGS = EvalSettings(n_drives=3, queries_per_drive=50, seed=4)


def test_fig12_rups_vs_gps(benchmark, record_result):
    result = benchmark.pedantic(
        fig12_vs_gps, kwargs={"settings": SETTINGS}, rounds=1, iterations=1
    )
    record_result("fig12", result.render())

    rups_means = {k: float(np.mean(v)) for k, v in result.rups.items()}
    gps_means = {k: float(np.mean(v)) for k, v in result.gps.items()}

    # RUPS stable across environments: worst/best mean ratio bounded
    # (paper's own spread is 6.9 m / 2.3 m = 3.0x).
    assert max(rups_means.values()) / min(rups_means.values()) < 4.0
    # GPS varies tremendously: under-elevated far worse than suburb.
    assert (
        gps_means["under elevated roads"] > 3 * gps_means["2-lane roads, suburb"]
    )
    # GPS ordering matches the paper: suburb best, under-elevated worst.
    assert gps_means["2-lane roads, suburb"] < gps_means["4-lane roads, urban"]
    assert gps_means["4-lane roads, urban"] < gps_means["under elevated roads"]
    # RUPS wins in every environment; overall by a clear factor.
    for env in rups_means:
        assert rups_means[env] < gps_means[env]
    assert result.mean_improvement_factor() > 2.0
    # GPS availability suffers under the elevated deck.
    assert (
        result.gps_availability["under elevated roads"]
        < result.gps_availability["2-lane roads, suburb"]
    )
