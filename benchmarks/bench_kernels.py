"""Micro-benchmarks of the library's hot kernels.

Not a paper artifact per se, but the performance contract the rest of
the benches rely on: field construction, scan simulation, binding, and
the per-query end-to-end cost (which §V-B compares against the ~0.5 s
communication budget).
"""

import time

import numpy as np
import pytest

from repro.core.binding import bind_scan
from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.core.syn import find_syn_points
from repro.core.trajectory import GeoTrajectory, GsmTrajectory
from repro.experiments.timing import kernel_comparison_sweep
from repro.gsm.band import EVAL_SUBSET_115
from repro.gsm.field import make_straight_field
from repro.gsm.scanner import RadioGroup, scan_drive
from repro.roads.types import RoadType
from repro.sensors.deadreckoning import EstimatedTrack


@pytest.fixture(scope="module")
def field():
    return make_straight_field(2000.0, RoadType.URBAN_4LANE, plan=EVAL_SUBSET_115, seed=0)


@pytest.fixture(scope="module")
def scan(field):
    group = RadioGroup(EVAL_SUBSET_115, n_radios=4)
    return scan_drive(field, lambda t: 10.0 * np.asarray(t), group, 0.0, 180.0, rng=0)


@pytest.fixture(scope="module")
def track():
    t = np.arange(0.0, 180.0, 0.1)
    return EstimatedTrack(times_s=t, distance_m=10.0 * t, heading_rad=np.zeros(t.size))


def test_field_construction(benchmark):
    benchmark.pedantic(
        make_straight_field,
        args=(2000.0,),
        kwargs={"road_type": RoadType.URBAN_4LANE, "plan": EVAL_SUBSET_115, "seed": 1},
        rounds=3,
        iterations=1,
    )


def test_scan_simulation(benchmark, field):
    group = RadioGroup(EVAL_SUBSET_115, n_radios=4)
    stream = benchmark(
        scan_drive, field, lambda t: 10.0 * np.asarray(t), group, 0.0, 60.0, 0
    )
    assert len(stream) > 10_000


def test_binding(benchmark, scan, track):
    traj = benchmark(
        bind_scan, scan, track, 175.0, 1000.0
    )
    assert traj.n_marks == 1001


def _overlapping_pair(
    m_marks: int = 2000, k_channels: int = 45, offset_marks: int = 400, seed: int = 0
) -> tuple[GsmTrajectory, GsmTrajectory]:
    """Two fresh (un-memoised) overlapping trajectories for search timing."""
    rng = np.random.default_rng(seed)
    base = rng.normal(-80.0, 8.0, size=(k_channels, m_marks + offset_marks))

    def traj(start_col: int, start_m: float) -> GsmTrajectory:
        power = base[:, start_col : start_col + m_marks] + rng.normal(
            0.0, 1.0, size=(k_channels, m_marks)
        )
        geo = GeoTrajectory(
            timestamps_s=np.linspace(0.0, 200.0, m_marks),
            headings_rad=np.zeros(m_marks),
            spacing_m=1.0,
            start_distance_m=start_m,
        )
        return GsmTrajectory(
            power_dbm=power, channel_ids=np.arange(k_channels), geo=geo
        )

    return traj(0, 0.0), traj(offset_marks, float(offset_marks))


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_speedup_contract(record_result):
    """The PR's performance contract: batched >= 10x reference at m >= 2000.

    Two regimes are recorded to ``benchmarks/results/t-kernels.txt``:

    * the sliding-sweep table from :func:`kernel_comparison_sweep` —
      with memoised window features (warm — the tracking and multi-SYN
      regime) the matmul kernel must beat the reference loop by >= 10x
      at every context length >= 2000 marks;
    * an end-to-end multi-SYN ``find_syn_points``, both cold (fresh
      trajectory objects, so the two feature builds are paid inside the
      search) and warm (same objects again, the memoised state every
      tracking update and repeat query runs in) — the warm search is
      the one held to the 10x contract.
    """
    result = kernel_comparison_sweep()

    search_cfg = dict(
        context_length_m=2000.0,
        window_length_m=100.0,
        n_syn_points=5,
        coherency_threshold=0.5,
        min_coherency_threshold=0.5,
    )

    def search(kernel: str, pair) -> None:
        own, other = pair
        find_syn_points(own, other, RupsConfig(kernel=kernel, **search_cfg))

    ref_s = _best_of(lambda: search("reference", _overlapping_pair()), 2)
    cold_s = _best_of(lambda: search("batched", _overlapping_pair()), 3)
    pair = _overlapping_pair()
    search("batched", pair)  # memoise both feature tensors
    warm_s = _best_of(lambda: search("batched", pair), 5)

    text = result.render() + "\n\n" + (
        "find_syn_points (m=2000 marks, k=45, w=100 m, 5 SYN offsets): "
        f"reference {ref_s * 1e3:.1f} ms, "
        f"batched cold {cold_s * 1e3:.1f} ms ({ref_s / cold_s:.1f}x), "
        f"batched warm {warm_s * 1e3:.1f} ms ({ref_s / warm_s:.1f}x)"
    )
    record_result("t-kernels", text)

    for m, ref, _cold, warm in result.rows:
        if m >= 2000:
            assert ref / warm >= 10.0, (
                f"m={m}: warm speedup {ref / warm:.1f}x below the 10x contract"
            )
    assert ref_s / warm_s >= 10.0, (
        f"warm find_syn_points speedup {ref_s / warm_s:.1f}x below the "
        "10x contract"
    )


def test_full_query(benchmark, scan, track, field):
    """End-to-end per-query cost: bind both sides + SYN search + resolve.

    §V-A argues computation is negligible against the ~0.5 s exchange;
    our whole query must comfortably beat that budget.
    """
    engine = RupsEngine(RupsConfig())
    other = engine.build_trajectory(scan, track, at_time_s=170.0)

    def query():
        own = engine.build_trajectory(scan, track, at_time_s=175.0)
        return engine.estimate_relative_distance(own, other)

    est = benchmark(query)
    if benchmark.stats is not None:
        assert benchmark.stats.stats.mean < 0.5
    assert est is not None
