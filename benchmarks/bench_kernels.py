"""Micro-benchmarks of the library's hot kernels.

Not a paper artifact per se, but the performance contract the rest of
the benches rely on: field construction, scan simulation, binding, and
the per-query end-to-end cost (which §V-B compares against the ~0.5 s
communication budget).
"""

import numpy as np
import pytest

from repro.core.binding import bind_scan
from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.gsm.band import EVAL_SUBSET_115
from repro.gsm.field import make_straight_field
from repro.gsm.scanner import RadioGroup, scan_drive
from repro.roads.types import RoadType
from repro.sensors.deadreckoning import EstimatedTrack


@pytest.fixture(scope="module")
def field():
    return make_straight_field(2000.0, RoadType.URBAN_4LANE, plan=EVAL_SUBSET_115, seed=0)


@pytest.fixture(scope="module")
def scan(field):
    group = RadioGroup(EVAL_SUBSET_115, n_radios=4)
    return scan_drive(field, lambda t: 10.0 * np.asarray(t), group, 0.0, 180.0, rng=0)


@pytest.fixture(scope="module")
def track():
    t = np.arange(0.0, 180.0, 0.1)
    return EstimatedTrack(times_s=t, distance_m=10.0 * t, heading_rad=np.zeros(t.size))


def test_field_construction(benchmark):
    benchmark.pedantic(
        make_straight_field,
        args=(2000.0,),
        kwargs={"road_type": RoadType.URBAN_4LANE, "plan": EVAL_SUBSET_115, "seed": 1},
        rounds=3,
        iterations=1,
    )


def test_scan_simulation(benchmark, field):
    group = RadioGroup(EVAL_SUBSET_115, n_radios=4)
    stream = benchmark(
        scan_drive, field, lambda t: 10.0 * np.asarray(t), group, 0.0, 60.0, 0
    )
    assert len(stream) > 10_000


def test_binding(benchmark, scan, track):
    traj = benchmark(
        bind_scan, scan, track, 175.0, 1000.0
    )
    assert traj.n_marks == 1001


def test_full_query(benchmark, scan, track, field):
    """End-to-end per-query cost: bind both sides + SYN search + resolve.

    §V-A argues computation is negligible against the ~0.5 s exchange;
    our whole query must comfortably beat that budget.
    """
    engine = RupsEngine(RupsConfig())
    other = engine.build_trajectory(scan, track, at_time_s=170.0)

    def query():
        own = engine.build_trajectory(scan, track, at_time_s=175.0)
        return engine.estimate_relative_distance(own, other)

    est = benchmark(query)
    if benchmark.stats is not None:
        assert benchmark.stats.stats.mean < 0.5
    assert est is not None
