"""§V-C — flexible checking window + threshold ablation.

Regenerates the detection-vs-false-positive trade-off over window
lengths down to the paper's 10 m minimum, and sweeps the coherency
threshold at the full window (the DESIGN.md threshold ablation).

Shape assertions: short windows with relaxed thresholds still detect
related vehicles at useful rates with "acceptable" false positives
(paper §V-C); at the full window the operating threshold of 1.2 achieves
perfect separation.
"""

import numpy as np

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.core.syn import seek_syn_point
from repro.experiments.evaluation import EvalSettings, window_ablation
from repro.experiments.traces import drive_pair
from repro.gsm.band import EVAL_SUBSET_115
from repro.roads.types import RoadType
from repro.util.rng import RngFactory


def test_flexible_window_tradeoff(benchmark, record_result):
    result = benchmark.pedantic(
        window_ablation,
        kwargs={"n_trials": 30, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result("t-window", result.render())

    det = result.detection_rate
    fpr = result.false_positive_rate
    # Full window: near-perfect detection, no false positives.
    assert det[-1] >= 0.9
    assert fpr[-1] <= 0.05
    # Even the 10 m window detects a useful fraction with acceptable FP.
    assert det[0] >= 0.5
    assert fpr[0] <= 0.35
    # Longer windows never hurt detection much nor increase FP.
    assert det[-1] >= det[0] - 0.05
    assert fpr[-1] <= fpr[0] + 0.05


def test_threshold_sweep(benchmark, record_result):
    """Coherency-threshold ablation at the full 85 m window."""

    def run():
        pair = drive_pair(
            road_type=RoadType.URBAN_4LANE,
            duration_s=420.0,
            plan=EVAL_SUBSET_115,
            seed=5001,
        )
        foreign = drive_pair(
            road_type=RoadType.URBAN_4LANE,
            duration_s=420.0,
            plan=EVAL_SUBSET_115,
            seed=5002,
        )
        engine = RupsEngine(RupsConfig())
        rng = RngFactory(3).generator("threshold-sweep")
        times = rng.uniform(*pair.query_window(1000.0), size=25)
        rows = []
        for thr in (0.6, 0.9, 1.2, 1.5, 1.8):
            cfg = RupsConfig(coherency_threshold=thr, min_coherency_threshold=min(0.9, thr))
            hits = fps = 0
            for tq in times:
                own = engine.build_trajectory(
                    pair.rear.scan, pair.rear.estimated, at_time_s=tq
                )
                rel = engine.build_trajectory(
                    pair.front.scan, pair.front.estimated, at_time_s=tq
                )
                unrel = engine.build_trajectory(
                    foreign.front.scan, foreign.front.estimated, at_time_s=tq
                )
                o1, r1 = engine._reduce_channels(own, rel)
                if seek_syn_point(o1, r1, cfg) is not None:
                    hits += 1
                o2, u2 = engine._reduce_channels(own, unrel)
                if seek_syn_point(o2, u2, cfg) is not None:
                    fps += 1
            rows.append((thr, hits / times.size, fps / times.size))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["t-window ablation — coherency threshold sweep (85 m window):"]
    lines.append("  threshold | related detected | unrelated accepted")
    for thr, det, fpr in rows:
        lines.append(f"  {thr:9.1f} | {det:16.2f} | {fpr:18.2f}")
    record_result("t-window_threshold", "\n".join(lines))

    by_thr = {thr: (det, fpr) for thr, det, fpr in rows}
    # The paper's 1.2 separates perfectly here.
    assert by_thr[1.2][0] >= 0.9
    assert by_thr[1.2][1] == 0.0
    # Lower thresholds admit false positives before they lose detections.
    assert by_thr[0.6][1] >= by_thr[1.2][1]
    # Very high thresholds start missing related vehicles.
    assert by_thr[1.8][0] <= by_thr[1.2][0]
