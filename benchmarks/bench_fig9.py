"""Fig 9 — SYN point error vs number and placement of scanning radios.

Regenerates the CDFs for the paper's four configurations on 8-lane urban
roads (same lane).  Shape assertions: more radios reduce SYN error; the
central placement is worse than front at equal radio count.

Also includes the missing-channel ablation flagged in DESIGN.md: the
same 1-radio workload with interpolation disabled, quantifying what
§IV-C's linear interpolation buys.
"""

import numpy as np

from repro.core.config import RupsConfig
from repro.core.engine import RupsEngine
from repro.experiments.evaluation import EvalSettings, fig9_radios, run_queries
from repro.experiments.traces import drive_pair
from repro.gsm.band import EVAL_SUBSET_115
from repro.roads.types import RoadType
from repro.util.rng import RngFactory

SETTINGS = EvalSettings(n_drives=3, queries_per_drive=50, seed=1)


def test_fig9_radio_configurations(benchmark, record_result):
    result = benchmark.pedantic(
        fig9_radios, kwargs={"settings": SETTINGS}, rounds=1, iterations=1
    )
    record_result("fig9", result.render())

    mean = {k: float(np.mean(v)) for k, v in result.syn_errors.items() if v.size}
    four_front = mean["4 front radios, 4 front radios"]
    four_central = mean["4 central radios, 4 front radios"]
    two_front = mean["2 front radios, 2 front radios"]
    one_front = mean["1 front radio, 1 front radio"]

    # More radios -> better (1 clearly worst; 4 no worse than 2).
    assert one_front > four_front
    assert one_front > two_front
    assert four_front <= two_front * 1.25
    # Placement matters: central worse than front.
    assert four_central > four_front
    # Absolute regime: metres, not tens of metres, for the best config.
    assert four_front < 5.0


def test_fig9_interpolation_ablation(benchmark, record_result):
    """Missing-channel interpolation on vs off (1 radio, worst case)."""

    def run() -> dict:
        pair = drive_pair(
            road_type=RoadType.URBAN_8LANE,
            duration_s=SETTINGS.duration_s,
            n_radios=1,
            plan=EVAL_SUBSET_115,
            seed=777,
        )
        rng = RngFactory(7).generator("ablation")
        times = rng.uniform(*pair.query_window(1000.0), size=40)
        out = {}
        for label, interpolate in (("interpolated", True), ("raw gaps", False)):
            engine = RupsEngine(RupsConfig())
            errs = []
            unresolved = 0
            for tq in times:
                own = engine.build_trajectory(
                    pair.rear.scan, pair.rear.estimated, at_time_s=tq
                )
                other = engine.build_trajectory(
                    pair.front.scan, pair.front.estimated, at_time_s=tq
                )
                if not interpolate:
                    # strip the interpolation by re-binding raw
                    from repro.core.binding import bind_scan

                    own = bind_scan(
                        pair.rear.scan,
                        pair.rear.estimated,
                        at_time_s=tq,
                        context_length_m=1000.0,
                        interpolate=False,
                    )
                    other = bind_scan(
                        pair.front.scan,
                        pair.front.estimated,
                        at_time_s=tq,
                        context_length_m=1000.0,
                        interpolate=False,
                    )
                est = engine.estimate_relative_distance(own, other)
                if est.resolved:
                    truth = float(pair.scenario.true_relative_distance(tq))
                    errs.append(abs(est.distance_m - truth))
                else:
                    unresolved += 1
            out[label] = (np.array(errs), unresolved)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["fig9 ablation — SIV-C missing-channel interpolation (1 radio):"]
    for label, (errs, unresolved) in out.items():
        mean = float(np.mean(errs)) if errs.size else float("nan")
        lines.append(
            f"  {label:13s}: mean RDE {mean:6.2f} m, unresolved {unresolved}/40"
        )
    record_result("fig9_ablation", "\n".join(lines))
    # Interpolation must not hurt, and should resolve at least as often.
    errs_on, un_on = out["interpolated"]
    errs_off, un_off = out["raw gaps"]
    assert un_on <= un_off
