"""Loss sweep — RDF accuracy, lock retention and resync traffic vs loss.

Regenerates the ``t-loss`` table: the full exchange + tracking pipeline
driven through i.i.d. and bursty (Gilbert-Elliott) loss regimes.  The
acceptance contract is that lock retention degrades monotonically and
tracking error grows monotonically with the loss rate, for every
burstiness level.
"""

import pytest

from repro.experiments.lossy import loss_sweep


@pytest.mark.slow
def test_loss_sweep(benchmark, record_result):
    result = benchmark.pedantic(loss_sweep, rounds=1, iterations=1)
    record_result("t-loss", result.render())

    for burstiness in result.burstiness_values:
        cells = result.rows_for(burstiness)
        retention = [c.lock_retention for c in cells]
        error = [c.tracking_error_m for c in cells]
        delivery = [c.message_delivery for c in cells]
        assert all(
            a >= b - 1e-9 for a, b in zip(retention, retention[1:])
        ), f"lock retention not monotone at burstiness {burstiness}: {retention}"
        assert all(
            a <= b + 1e-9 for a, b in zip(error, error[1:])
        ), f"tracking error not monotone at burstiness {burstiness}: {error}"
        assert all(
            a >= b - 1e-9 for a, b in zip(delivery, delivery[1:])
        ), f"message delivery not monotone at burstiness {burstiness}: {delivery}"

    # The lossless cell is the §V-B baseline: perfect delivery, a
    # permanent lock, sub-metre tracking and no forced resyncs.
    baseline = result.rows_for(result.burstiness_values[0])[0]
    assert baseline.message_delivery == 1.0
    assert baseline.lock_retention == 1.0
    assert baseline.tracking_error_m < 1.0
    assert baseline.full_resyncs == 0
